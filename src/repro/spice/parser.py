"""SPICE-deck netlist parser.

Reads the classic card format the 1996-era flows exchanged, so netlists
can live as plain text next to the Python models::

    * OP1 bias test
    VDD vdd 0 5.0
    IB  vdd d 20u
    M1  d d 0 NMOS W=10u L=5u
    R1  d out 1k
    C1  out 0 10p IC=0
    .end

Supported cards: ``R``, ``C``, ``L``, ``V``, ``I`` (DC value or ``PULSE``/
``PWL``), ``E`` (VCVS), ``G`` (VCCS), ``S`` (switch), ``M`` (MOSFET with
``NMOS``/``PMOS`` model and ``W=``/``L=``), comments (``*``, ``;``),
continuation lines (``+``) and engineering suffixes (``f p n u m k meg
g t``).  ``.end`` terminates; other dot-cards are ignored with a note in
:attr:`ParseResult.warnings`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DeckError
from repro.spice.netlist import Circuit

_SUFFIXES = {
    "f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6, "m": 1e-3,
    "k": 1e3, "meg": 1e6, "g": 1e9, "t": 1e12,
}

_NUMBER_RE = re.compile(
    r"^([+-]?\d+\.?\d*(?:[eE][+-]?\d+)?)(meg|[fpnumkgt])?$",
    re.IGNORECASE)


class NetlistSyntaxError(DeckError):
    """Raised for a malformed card, with the line number."""

    def __init__(self, line_no: int, line: str, message: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


def parse_value(token: str) -> float:
    """Parse a SPICE number with engineering suffix (``10k``, ``2.2u``,
    ``1meg``)."""
    match = _NUMBER_RE.match(token.strip())
    if not match:
        raise ValueError(f"bad numeric value {token!r}")
    base = float(match.group(1))
    suffix = (match.group(2) or "").lower()
    return base * _SUFFIXES.get(suffix, 1.0)


def _parse_params(tokens: List[str]) -> Dict[str, str]:
    params = {}
    for token in tokens:
        if "=" not in token:
            raise ValueError(f"expected key=value, got {token!r}")
        key, value = token.split("=", 1)
        params[key.strip().lower()] = value.strip()
    return params


def _parse_source_value(tokens: List[str]):
    """DC value, PULSE(...) or PWL(...)."""
    joined = " ".join(tokens)
    upper = joined.upper()
    if upper.startswith("PULSE"):
        inner = joined[joined.index("(") + 1:joined.rindex(")")]
        args = [parse_value(t) for t in inner.replace(",", " ").split()]
        if len(args) < 4:
            raise ValueError("PULSE needs v1 v2 delay period [duty]")
        v1, v2, delay, period = args[:4]
        duty = args[4] if len(args) > 4 else 0.5
        def pulse(t: float) -> float:
            if t < delay:
                return v1
            phase = ((t - delay) % period) / period
            return v2 if phase < duty else v1
        return pulse
    if upper.startswith("PWL"):
        inner = joined[joined.index("(") + 1:joined.rindex(")")]
        args = [parse_value(t) for t in inner.replace(",", " ").split()]
        if len(args) < 4 or len(args) % 2:
            raise ValueError("PWL needs t1 v1 t2 v2 ...")
        times = args[0::2]
        values = args[1::2]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("PWL times must increase")
        def pwl(t: float) -> float:
            if t <= times[0]:
                return values[0]
            if t >= times[-1]:
                return values[-1]
            for i in range(1, len(times)):
                if t <= times[i]:
                    frac = (t - times[i - 1]) / (times[i] - times[i - 1])
                    return values[i - 1] + frac * (values[i] - values[i - 1])
            return values[-1]
        return pwl
    if len(tokens) == 1 or (len(tokens) == 2 and tokens[0].upper() == "DC"):
        return parse_value(tokens[-1])
    raise ValueError(f"cannot parse source value {joined!r}")


@dataclass
class ParseResult:
    """Parsed circuit plus any non-fatal notes."""

    circuit: Circuit
    warnings: List[str] = field(default_factory=list)


def parse_netlist(text: str, name: str = "netlist") -> ParseResult:
    """Parse a SPICE-style deck into a :class:`Circuit`."""
    # join continuation lines first
    raw_lines = text.splitlines()
    lines: List[Tuple[int, str]] = []
    for i, raw in enumerate(raw_lines, start=1):
        stripped = raw.strip()
        if stripped.startswith("+") and lines:
            prev_no, prev = lines[-1]
            lines[-1] = (prev_no, prev + " " + stripped[1:].strip())
        else:
            lines.append((i, stripped))

    ckt = Circuit(name)
    warnings: List[str] = []
    for line_no, line in lines:
        if not line or line.startswith("*") or line.startswith(";"):
            continue
        if ";" in line:
            line = line.split(";", 1)[0].strip()
        tokens = line.split()
        card = tokens[0]
        kind = card[0].upper()
        try:
            if kind == ".":
                if card.lower() == ".end":
                    break
                warnings.append(f"line {line_no}: ignored card {card}")
                continue
            if kind == "R":
                _need(tokens, 4, "R name n+ n- value")
                ckt.resistor(card, tokens[1], tokens[2],
                             parse_value(tokens[3]))
            elif kind == "C":
                _need(tokens, 4, "C name n+ n- value [IC=v]")
                params = _parse_params(tokens[4:])
                ic = parse_value(params["ic"]) if "ic" in params else None
                ckt.capacitor(card, tokens[1], tokens[2],
                              parse_value(tokens[3]), ic=ic)
            elif kind == "L":
                _need(tokens, 4, "L name n+ n- value [IC=i]")
                params = _parse_params(tokens[4:])
                ic = parse_value(params["ic"]) if "ic" in params else None
                ckt.inductor(card, tokens[1], tokens[2],
                             parse_value(tokens[3]), ic=ic)
            elif kind == "V":
                _need(tokens, 4, "V name n+ n- value|PULSE|PWL")
                ckt.vsource(card, tokens[1], tokens[2],
                            _parse_source_value(tokens[3:]))
            elif kind == "I":
                _need(tokens, 4, "I name n+ n- value|PULSE|PWL")
                ckt.isource(card, tokens[1], tokens[2],
                            _parse_source_value(tokens[3:]))
            elif kind == "E":
                _need(tokens, 6, "E name out+ out- in+ in- gain")
                ckt.vcvs(card, tokens[1], tokens[2], tokens[3], tokens[4],
                         parse_value(tokens[5]))
            elif kind == "G":
                _need(tokens, 6, "G name out+ out- in+ in- gm")
                ckt.vccs(card, tokens[1], tokens[2], tokens[3], tokens[4],
                         parse_value(tokens[5]))
            elif kind == "S":
                _need(tokens, 6, "S name n+ n- ctl+ ctl- [params]")
                params = _parse_params(tokens[6:])
                ckt.switch(card, tokens[1], tokens[2], tokens[3], tokens[4],
                           v_on=parse_value(params.get("von", "2.5")),
                           r_on=parse_value(params.get("ron", "100")),
                           r_off=parse_value(params.get("roff", "1g")))
            elif kind == "M":
                _need(tokens, 5, "M name d g s MODEL [W= L=]")
                model = tokens[4].upper()
                params = _parse_params(tokens[5:])
                w = parse_value(params.get("w", "10u"))
                l = parse_value(params.get("l", "5u"))
                if model == "NMOS":
                    ckt.nmos(card, tokens[1], tokens[2], tokens[3], w=w, l=l)
                elif model == "PMOS":
                    ckt.pmos(card, tokens[1], tokens[2], tokens[3], w=w, l=l)
                else:
                    raise ValueError(f"unknown MOS model {model!r}")
            else:
                raise ValueError(f"unknown element type {kind!r}")
        except NetlistSyntaxError:
            raise
        except (ValueError, KeyError) as exc:
            raise NetlistSyntaxError(line_no, line, str(exc)) from exc
    return ParseResult(circuit=ckt, warnings=warnings)


def _need(tokens: List[str], n: int, usage: str) -> None:
    if len(tokens) < n:
        raise ValueError(f"too few fields (usage: {usage})")
