"""Batched K-variant transient marching for fault dictionaries.

A fault-dictionary campaign simulates K nearly identical circuits — the
same base netlist with one injected fault apiece — through the same
stimulus on the same time grid.  :class:`BatchedMarch` exploits that
structure: the K variants walk the grid in lockstep, sharing the step
loop, the deadline bookkeeping and (for linear circuits) the per-step
source evaluation and the recurrence arithmetic, which is stacked into a
``(K, n, n)`` tensor and applied with one :func:`numpy.matmul` per step
instead of K Python-level marches.

Exactness contract
------------------
Results are **bitwise identical** to running :func:`repro.spice.transient.transient`
on each variant individually:

* the batched linear recurrence evaluates ``matmul((K, n, n), (K, n, 1))``,
  which LAPACK/BLAS computes per slice exactly as the serial march's
  ``np.dot((n, n), (n,))`` (verified empirically in the test suite);
  per-source columns are added in the same element order with the same
  scalar levels;
* nonlinear variants advance through the *same*
  :func:`repro.spice.transient._advance` /
  :func:`repro.spice.solver.newton_solve` code as the serial engine —
  lockstep means step-synchronised, not arithmetically re-associated —
  so Newton damping, LU reuse, homotopy escalation and timestep
  subdivision behave identically per variant;
* any variant the batch cannot finish (deck validation failure, Newton
  breakdown, linear-march breakdown) is *evicted* — its slot returns
  ``None`` and the caller re-runs that variant through the serial path,
  reproducing the serial outcome (including the serial exception)
  exactly.

Grouping rules
--------------
Variants are grouped by MNA system size ``n`` (a stuck-at fault adds an
internal node and a source branch, a bridging fault adds nothing, so a
homogeneous fault universe usually lands in one or two groups).  Within
a size group, linear backward-Euler variants whose time-varying sources
are the *same value objects* (the normal case: faulty copies share the
base circuit's stimulus) form a lockstep tensor group; everything else
marches per-variant in the shared step loop.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.core import OBS, event
from repro.resilience.deadline import DEADLINE
from repro.resilience.retry import RetryPolicy, active_policy
from repro.spice.elements import Capacitor, evaluate_source
from repro.spice.fastpath import LinearMarch, linear_march_supported
from repro.spice.mna import Assembler
from repro.spice.netlist import Circuit, GROUND
from repro.spice.solver import NewtonError, _solve_with_homotopy
from repro.spice.transient import (
    GridMismatchWarning,
    TransientResult,
    _advance,
    _run_linear_march,
)
from repro.spice.validate import validate_deck

__all__ = ["BatchedMarch", "batched_transient"]


class _Variant:
    """One circuit's march state inside a batch."""

    __slots__ = ("slot", "circuit", "assembler", "state", "capacitors", "x",
                 "record_nodes", "rec_idx", "branch_names", "branch_idx",
                 "trace_mat", "branch_mat", "_ext", "march")

    def __init__(self, slot: int, circuit: Circuit) -> None:
        self.slot = slot
        self.circuit = circuit
        self.assembler: Optional[Assembler] = None
        self.march = None

    def bind(self, record: Optional[Sequence[str]],
             record_branches: Optional[Sequence[str]], method: str,
             n_steps: int) -> None:
        """Mirror the serial engine's assembler/capture setup."""
        asm = Assembler(self.circuit, fast_path=True)
        self.assembler = asm
        self.state = asm.new_state()
        self.state.method = method
        self.capacitors = self.circuit.elements_of_type(Capacitor)
        record_nodes = (list(record) if record is not None
                        else asm.node_names)
        for node in record_nodes:
            if node != GROUND and node not in asm.index:
                raise KeyError(f"cannot record unknown node {node!r}")
        self.record_nodes = record_nodes
        branch_indices: Dict[str, int] = {}
        for name in (record_branches or ()):
            elem = self.circuit.element(name)
            if getattr(elem, "n_branches", 0) < 1:
                raise TypeError(f"{name!r} carries no branch current "
                                f"(not a voltage source)")
            branch_indices[name] = elem.branch_index()
        rec_raw = np.array([asm.index.get(node, -1) for node in record_nodes],
                           dtype=np.intp)
        self.rec_idx = np.where(rec_raw < 0, asm.n, rec_raw)
        self.branch_names = list(branch_indices)
        self.branch_idx = np.array(
            [branch_indices[name] for name in self.branch_names],
            dtype=np.intp)
        self.trace_mat = np.empty((len(record_nodes), n_steps + 1))
        self.branch_mat = np.empty((len(self.branch_names), n_steps + 1))
        self._ext = np.empty(asm.n + 1)
        self._ext[asm.n] = 0.0

    def capture(self, k: int, vec: np.ndarray) -> None:
        n = self.assembler.n
        self._ext[:n] = vec
        self.trace_mat[:, k] = self._ext[self.rec_idx]
        if len(self.branch_names):
            self.branch_mat[:, k] = vec[self.branch_idx]

    def capture_all(self, x_all: np.ndarray) -> None:
        """Vectorised capture of a full linear-march trajectory (mirrors
        the serial engine's gather, values and all)."""
        n_pts = x_all.shape[0]
        x_ext = np.hstack([x_all, np.zeros((n_pts, 1))])
        self.trace_mat[:, :] = x_ext[:, self.rec_idx].T
        if len(self.branch_names):
            self.branch_mat[:, :] = x_all[:, self.branch_idx].T

    def result(self, times: np.ndarray, n_steps: int, method: str,
               engine: str, batch_k: int) -> TransientResult:
        traces = {node: self.trace_mat[i]
                  for i, node in enumerate(self.record_nodes)}
        branch_traces = {name: self.branch_mat[i]
                         for i, name in enumerate(self.branch_names)}
        result = TransientResult(times, traces,
                                 circuit_name=self.circuit.name,
                                 branch_samples=branch_traces)
        result.stats = dict(self.state.stats, engine=engine,
                            n_steps=n_steps, method=method, fast_path=True,
                            batch_k=batch_k)
        return result


class BatchedMarch:
    """March K faulty circuit variants in lockstep over one time grid.

    Parameters mirror :func:`repro.spice.transient.transient` (with the
    initial point always seeded from each variant's DC operating point —
    the fault-campaign convention).  :meth:`run` returns one
    :class:`~repro.spice.transient.TransientResult` per input circuit,
    or ``None`` for variants the batch had to evict; :attr:`failures`
    maps evicted slots to a reason string.  Callers are expected to
    re-run ``None`` slots through the serial engine, which reproduces
    the serial outcome (or the serial exception) exactly.
    """

    def __init__(self, circuits: Sequence[Circuit], t_stop: float, dt: float,
                 record: Optional[Sequence[str]] = None,
                 record_branches: Optional[Sequence[str]] = None,
                 method: str = "be",
                 max_newton: int = 60,
                 max_subdivisions: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 validate: bool = True) -> None:
        if t_stop <= 0:
            raise ValueError("t_stop must be positive")
        if dt <= 0 or dt > t_stop:
            raise ValueError("dt must lie in (0, t_stop]")
        if method not in ("be", "trap"):
            raise ValueError(f"unknown method {method!r}")
        policy = retry_policy if retry_policy is not None else active_policy()
        if max_subdivisions is None:
            max_subdivisions = policy.max_timestep_halvings
        self.t_stop = t_stop
        self.dt = dt
        self.record = record
        self.record_branches = record_branches
        self.method = method
        self.max_newton = max_newton
        self.max_subdivisions = max_subdivisions
        self.validate = validate
        #: evicted slot -> reason (the serial re-run owns the real error)
        self.failures: Dict[int, str] = {}

        self.n_steps = int(round(t_stop / dt))
        if abs(self.n_steps * dt - t_stop) > 1e-9 * max(abs(t_stop), dt):
            warnings.warn(
                f"t_stop={t_stop:g} is not an integer multiple of dt={dt:g}; "
                f"the march covers {self.n_steps} steps ending at "
                f"t={self.n_steps * dt:g}, not t_stop",
                GridMismatchWarning, stacklevel=3)
        self.times = dt * np.arange(self.n_steps + 1)
        self.variants: List[_Variant] = [
            _Variant(slot, circuit) for slot, circuit in enumerate(circuits)]

    # ------------------------------------------------------------------
    def _evict(self, variant: _Variant, reason: str) -> None:
        self.failures[variant.slot] = reason
        if OBS.enabled:
            OBS.metrics.counter("batched.evictions").inc()
            event("batched.eviction", level="info",
                  circuit=variant.circuit.name, reason=reason)

    # ------------------------------------------------------------------
    def run(self) -> List[Optional[TransientResult]]:
        """March every variant; see the class docstring for semantics."""
        results: List[Optional[TransientResult]] = [None] * len(self.variants)
        if OBS.enabled:
            m = OBS.metrics
            m.counter("batched.march_runs").inc()
            m.counter("batched.march_variants").inc(len(self.variants))

        # --- per-variant setup + DC operating point -------------------
        live: List[_Variant] = []
        for v in self.variants:
            try:
                if self.validate:
                    validate_deck(v.circuit)
                v.bind(self.record, self.record_branches, self.method,
                       self.n_steps)
                state = v.state
                state.dt = None
                state.t = 0.0
                v.x = _solve_with_homotopy(v.assembler, state,
                                           max_iter=self.max_newton * 2)
            except Exception as exc:  # noqa: BLE001 - evict, serial re-runs
                self._evict(v, f"{type(exc).__name__}: {exc}")
                continue
            v.capture(0, v.x)
            state.gmin = 1e-12
            state.source_scale = 1.0
            live.append(v)

        # --- route split ----------------------------------------------
        lockstep_groups, solo_linear, newton_route = self._route(live)

        for group in lockstep_groups:
            self._run_linear_group(group, results)
        for v in solo_linear:
            self._run_solo_linear(v, results)
        if newton_route:
            self._run_newton_route(newton_route, results)
        return results

    # ------------------------------------------------------------------
    def _route(self, live: List[_Variant]):
        """Split live variants into dense lockstep linear groups, solo
        (sparse) linear marches, and the generic Newton route."""
        newton_route: List[_Variant] = []
        solo_linear: List[_Variant] = []
        linear: List[_Variant] = []
        for v in live:
            if not linear_march_supported(v.circuit, self.method):
                newton_route.append(v)
            elif v.assembler.use_sparse:
                solo_linear.append(v)
            else:
                try:
                    v.march = LinearMarch(v.assembler, dt=self.dt, gmin=1e-12)
                except np.linalg.LinAlgError:
                    # serial falls back to the generic Newton loop here
                    newton_route.append(v)
                    continue
                linear.append(v)
        groups: Dict[Tuple, List[_Variant]] = {}
        for v in linear:
            sig = (v.march.n, tuple(id(value) for _c, value in v.march._tv))
            groups.setdefault(sig, []).append(v)
        return list(groups.values()), solo_linear, newton_route

    # ------------------------------------------------------------------
    def _run_linear_group(self, group: List[_Variant],
                          results: List[Optional[TransientResult]]) -> None:
        """Lockstep the linear recurrence over a same-size group.

        Per step the serial march computes ``np.dot(A_i, x_i)`` per
        variant; here one ``matmul`` applies every variant's ``A`` at
        once — slice-for-slice the same LAPACK arithmetic, so the
        trajectories are bitwise identical to K serial marches.
        """
        k_var = len(group)
        n = group[0].march.n
        n_pts = self.n_steps + 1
        a = np.stack([v.march._a_mat for v in group])
        const = np.stack([v.march._const for v in group])
        tv_values = [value for _c, value in group[0].march._tv]
        tv_cols = [np.stack([v.march._tv[j][0] for v in group])
                   for j in range(len(tv_values))]
        x_all = np.empty((k_var, n_pts, n))
        x = np.stack([v.x for v in group])
        x_all[:, 0] = x
        times = self.times
        for k in range(1, n_pts):
            if DEADLINE.active is not None and not (k & 0xFF):
                DEADLINE.active.check("batched linear march")
            x_new = np.matmul(a, x[:, :, None])[:, :, 0]
            x_new += const
            if tv_values:
                t = times[k]
                for j, value in enumerate(tv_values):
                    x_new += evaluate_source(value, t) * tv_cols[j]
            x_all[:, k] = x_new
            x = x_new
        if OBS.enabled:
            OBS.metrics.counter("batched.lockstep_groups").inc()
            OBS.metrics.counter("batched.lockstep_steps").inc(
                k_var * (n_pts - 1))
        for i, v in enumerate(group):
            if not np.all(np.isfinite(x_all[i])):
                # serial would fall back to the generic Newton loop;
                # the serial re-run reproduces that path exactly
                if OBS.enabled:
                    OBS.metrics.counter(
                        "fastpath.linear_march_breakdowns").inc()
                self._evict(v, "linear march breakdown (non-finite)")
                continue
            if OBS.enabled:
                m = OBS.metrics
                m.counter("fastpath.linear_march_runs").inc()
                m.counter("fastpath.linear_march_steps").inc(n_pts - 1)
                m.counter("mna.lu_reuses").inc(n_pts - 1)
                m.counter("transient.runs").inc()
                m.counter("transient.steps").inc(n_pts - 1)
            v.capture_all(x_all[i])
            results[v.slot] = v.result(self.times, self.n_steps, self.method,
                                       engine="batched_linear_march",
                                       batch_k=k_var)

    # ------------------------------------------------------------------
    def _run_solo_linear(self, v: _Variant,
                         results: List[Optional[TransientResult]]) -> None:
        """March one sparse-route linear variant individually (the dense
        tensor lockstep does not apply, but the variant still rides in
        the batch for campaign chunking/timeout purposes)."""
        x_all = _run_linear_march(v.assembler, v.x, self.times)
        if x_all is None:
            self._evict(v, "sparse linear march unavailable")
            return
        if OBS.enabled:
            OBS.metrics.counter("transient.runs").inc()
            OBS.metrics.counter("transient.steps").inc(self.n_steps)
        v.capture_all(x_all)
        results[v.slot] = v.result(self.times, self.n_steps, self.method,
                                   engine="sparse_linear_march", batch_k=1)

    # ------------------------------------------------------------------
    def _run_newton_route(self, variants: List[_Variant],
                          results: List[Optional[TransientResult]]) -> None:
        """Step-synchronised generic route: every variant advances
        through the serial engine's own ``_advance`` (Newton damping,
        LU reuse, subdivision recursion and all), one grid point at a
        time across the batch."""
        active = list(variants)
        times = self.times
        for k in range(1, self.n_steps + 1):
            if not active:
                break
            if DEADLINE.active is not None:
                DEADLINE.active.check("batched transient march")
            t_target = float(times[k])
            for v in list(active):
                state = v.state
                state.method = ("be" if (self.method == "trap" and k == 1)
                                else self.method)
                try:
                    v.x = _advance(v.assembler, state, v.capacitors, v.x,
                                   t_from=t_target - self.dt, t_to=t_target,
                                   max_newton=self.max_newton,
                                   depth=self.max_subdivisions)
                except NewtonError as exc:
                    self._evict(v, f"NewtonError: {exc}")
                    active.remove(v)
                    continue
                v.capture(k, v.x)
        for v in active:
            if OBS.enabled:
                OBS.metrics.counter("transient.runs").inc()
                OBS.metrics.counter("transient.steps").inc(self.n_steps)
            results[v.slot] = v.result(self.times, self.n_steps, self.method,
                                       engine="batched_newton",
                                       batch_k=len(variants))


def batched_transient(circuits: Sequence[Circuit], t_stop: float, dt: float,
                      record: Optional[Sequence[str]] = None,
                      record_branches: Optional[Sequence[str]] = None,
                      method: str = "be",
                      max_newton: int = 60,
                      max_subdivisions: Optional[int] = None,
                      retry_policy: Optional[RetryPolicy] = None,
                      validate: bool = True
                      ) -> List[Optional[TransientResult]]:
    """Run K transients in lockstep; results align with ``circuits``.

    Entries are ``None`` for variants the batch evicted (see
    :class:`BatchedMarch`); callers re-run those through
    :func:`repro.spice.transient.transient` for the exact serial
    verdict.
    """
    march = BatchedMarch(circuits, t_stop, dt, record=record,
                         record_branches=record_branches, method=method,
                         max_newton=max_newton,
                         max_subdivisions=max_subdivisions,
                         retry_policy=retry_policy, validate=validate)
    return march.run()
