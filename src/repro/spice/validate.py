"""Pre-flight deck validation.

A malformed netlist used to surface as ``NewtonError: singular MNA
matrix`` (or a nonsense gmin-scaled solution) from deep inside a Newton
iteration — correct, but useless for finding the bad element.
:func:`validate_deck` runs in O(elements) before simulation and raises a
:class:`~repro.errors.DeckError` naming the offending node or element
for the two classic deck degeneracies:

* **floating nodes** — a non-ground node none of whose incident element
  terminals *define* it.  Defining terminals stamp a conductance
  (resistor, switch, MOSFET channel), a capacitance, or a branch
  equation (independent V source, VCVS output, inductor).  A node
  touched only by current injections (I source, VCCS output) or sense
  terminals (VCVS/VCCS inputs, switch control, MOSFET gate) is held
  solely by the solver's gmin and solves to garbage — almost always a
  netlist typo.
* **shorted voltage-source loops** — a cycle of ideal voltage-defining
  edges (independent sources and VCVS outputs), including two sources
  in parallel and a source shorted onto itself.  No gmin saves these:
  the branch rows are linearly dependent.

Validation is deliberately conservative: it only flags decks that
cannot produce a meaningful solve, so it is safe to run by default on
every ``dc_operating_point``/``transient`` entry (``validate=False``
opts out, e.g. for intentionally degenerate test fixtures).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import DeckError
from repro.spice.netlist import GROUND, Circuit

__all__ = ["validate_deck", "DeckError"]


def _defining_positions(elem) -> List[str]:
    """Nodes of ``elem`` that the element *defines* — by stamping a
    conductance, a capacitance, or a branch equation there.  Terminals
    not listed (current-source pins, controlled-source sense inputs,
    switch control pins, the MOSFET gate) read or inject but cannot
    hold a node's voltage on their own."""
    kind = type(elem).__name__
    if kind in ("Resistor", "Capacitor", "Switch"):
        return list(elem.nodes[:2])
    if kind in ("VoltageSource", "Inductor"):
        return list(elem.nodes[:2])
    if kind == "VCVS":
        # The output pair is voltage-defined; the sense pair only reads.
        return list(elem.nodes[:2])
    if kind == "MOSFET":
        # Channel conductance ties drain and source; the gate draws no
        # current in the level-1 model.
        return [elem.nodes[0], elem.nodes[2]]
    return []


def _ideal_voltage_edges(circuit: Circuit):
    """(element, node_a, node_b) for every ideal voltage-defining edge."""
    for elem in circuit.elements:
        if type(elem).__name__ in ("VoltageSource", "VCVS"):
            yield elem, elem.nodes[0], elem.nodes[1]


def validate_deck(circuit: Circuit) -> None:
    """Raise :class:`~repro.errors.DeckError` for unsimulatable decks.

    Checks are structural only — no matrix is assembled — so the cost is
    negligible next to a single Newton iteration.
    """
    _check_floating_nodes(circuit)
    _check_voltage_loops(circuit)


def _check_floating_nodes(circuit: Circuit) -> None:
    touched_by: Dict[str, str] = {}
    defined: set = set()
    for elem in circuit.elements:
        for node in elem.nodes:
            if node != GROUND:
                touched_by.setdefault(node, elem.name)
        for node in _defining_positions(elem):
            if node != GROUND:
                defined.add(node)
    for node, first_elem in touched_by.items():
        if node not in defined:
            raise DeckError(
                f"floating node {node!r} in circuit {circuit.name!r}: "
                f"touched by element {first_elem!r} but no element "
                f"defines its voltage (only current injections or sense "
                f"terminals reach it) — add a DC path or remove it")


def _check_voltage_loops(circuit: Circuit) -> None:
    # Union-find over ideal-voltage edges; closing a cycle (or stamping
    # a source across an already voltage-connected pair) means linearly
    # dependent branch rows — a guaranteed singular MNA matrix.
    parent: Dict[str, str] = {}

    def find(node: str) -> str:
        root = node
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[node] != root:          # path compression
            parent[node], node = root, parent[node]
        return root

    for elem, a, b in _ideal_voltage_edges(circuit):
        ra, rb = find(a), find(b)
        if ra == rb:
            kind = ("source shorted across its own terminals"
                    if a == b else "zero-resistance voltage-source loop")
            raise DeckError(
                f"{kind} closed by element {elem.name!r} between nodes "
                f"{a!r} and {b!r} in circuit {circuit.name!r} — the MNA "
                f"matrix is singular by construction")
        parent[ra] = rb
