"""MNA matrix assembly and simulation state shared by DC and transient.

The :class:`Assembler` carries the engine's central performance
optimisation: at construction every element is partitioned by its
``partition`` class attribute into *static* (stamps constant for a fixed
``(dt, method, gmin)`` configuration), *split* (a static G part plus a
per-step RHS part), *dynamic* (restamped every build) and *nonlinear*
(restamped every Newton iteration) groups.  The static portion of ``G``
— resistors, companion conductances, controlled-source patterns, the
gmin diagonal — is stamped once per configuration and memcpy'd into the
scratch system on every subsequent build, so a Newton iteration only
pays for sources, capacitor companion currents and the nonlinear
devices.  MOSFETs are additionally batched into a vectorised
:class:`~repro.spice.fastpath.MOSFETGroup`.

``Assembler(circuit, fast_path=False)`` disables all of this and
reproduces the original stamp-everything-per-iteration engine — the
reference the equivalence test suite compares against.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.linalg
import scipy.sparse
from scipy.linalg import lapack as _lapack
from scipy.sparse.linalg import splu as _splu_factor

from repro.obs.core import OBS
from repro.spice.netlist import Circuit, GROUND

#: Unknown count at or above which the assembler routes solves through
#: the CSC/SuperLU sparse path by default.  Dense LU is O(n^3) per
#: factorisation and O(n^2) per back-substitution; for the banded/near-
#: tridiagonal systems big flattened netlists produce, sparse wins well
#: before 1000 unknowns while small circuits stay on the (faster for
#: them) dense kernels.  Override with ``REPRO_SPARSE_THRESHOLD``.
SPARSE_THRESHOLD_DEFAULT = 500


def sparse_threshold() -> int:
    """The active dense→sparse crossover (env-overridable per process)."""
    raw = os.environ.get("REPRO_SPARSE_THRESHOLD")
    if raw is None:
        return SPARSE_THRESHOLD_DEFAULT
    try:
        return int(raw)
    except ValueError:
        return SPARSE_THRESHOLD_DEFAULT


class MNASystem:
    """The linear system ``G x = b`` rebuilt every Newton iteration.

    Row/column indices are MNA unknown indices; ``-1`` denotes ground and
    is silently skipped by the stamping helpers.  The matrices are
    allocated once and zeroed per iteration (:meth:`reset`) — the
    allocation, not the arithmetic, dominates small-circuit solves.
    """

    __slots__ = ("n", "g", "b", "_last_g", "_last_lu", "_last_piv")

    def __init__(self, n: int) -> None:
        self.n = n
        self.g = np.zeros((n, n))
        self.b = np.zeros(n)
        self._last_g: Optional[bytes] = None
        self._last_lu: Optional[np.ndarray] = None
        self._last_piv: Optional[np.ndarray] = None

    def reset(self) -> None:
        self.g[:] = 0.0
        self.b[:] = 0.0

    def add_g(self, i: int, j: int, value: float) -> None:
        if i >= 0 and j >= 0:
            self.g[i, j] += value

    def add_conductance(self, a: int, b: int, g: float) -> None:
        """Stamp a two-terminal conductance between unknowns a and b."""
        self.add_g(a, a, g)
        self.add_g(b, b, g)
        self.add_g(a, b, -g)
        self.add_g(b, a, -g)

    def add_transconductance(self, out_p: int, out_m: int,
                             in_p: int, in_m: int, gm: float) -> None:
        """Stamp a VCCS: current gm*(v_inp - v_inm) flowing out_p → out_m."""
        self.add_g(out_p, in_p, gm)
        self.add_g(out_p, in_m, -gm)
        self.add_g(out_m, in_p, -gm)
        self.add_g(out_m, in_m, gm)

    def add_b(self, i: int, value: float) -> None:
        if i >= 0:
            self.b[i] += value

    def add_current(self, a: int, b: int, current: float) -> None:
        """Stamp an independent current flowing from node a to node b."""
        self.add_b(a, -current)
        self.add_b(b, current)

    def solve(self) -> np.ndarray:
        return np.linalg.solve(self.g, self.b)

    def solve_fast(self) -> np.ndarray:
        """Solve through LAPACK ``dgesv`` directly, skipping the numpy
        wrapper overhead (a ~2x win on sub-50-unknown systems).

        The factorization ``dgesv`` computes anyway is kept; when the
        next call presents a bit-identical matrix — a transient sitting
        at a numeric steady state rebuilds the same Jacobian every step
        — the solve reuses it through ``dgetrs`` (identical arithmetic
        to what ``dgesv`` would run, so results are unchanged)."""
        if self._last_lu is not None and self.g.tobytes() == self._last_g:
            x, info = _lapack.dgetrs(self._last_lu, self._last_piv, self.b)
            if info != 0:
                raise np.linalg.LinAlgError(
                    f"dgetrs failed (info={info}) on reused factorization")
            if OBS.enabled:
                OBS.metrics.counter("mna.lu_reuses").inc()
            return x
        lu, piv, x, info = _lapack.dgesv(self.g, self.b)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"dgesv failed (info={info}): singular MNA matrix")
        self._last_g = self.g.tobytes()
        self._last_lu, self._last_piv = lu, piv
        if OBS.enabled:
            OBS.metrics.counter("mna.lu_factorizations").inc()
        return x


def _factorize_sparse(g: np.ndarray):
    """CSC-convert and SuperLU-factorise ``g``; singularity surfaces as
    :class:`numpy.linalg.LinAlgError` so sparse and dense routes raise
    identically through the solver's error handling."""
    a = scipy.sparse.csc_matrix(g)
    try:
        lu = _splu_factor(a)
    except RuntimeError as exc:  # SuperLU: "Factor is exactly singular"
        raise np.linalg.LinAlgError(str(exc)) from exc
    if OBS.enabled:
        OBS.metrics.counter("mna.sparse_factorizations").inc()
    return lu


class SimState:
    """Context handed to every element's ``stamp`` call.

    Carries the present Newton estimate ``x``, the previous-timestep
    solution ``x_prev``, timing information (``dt is None`` means DC
    analysis: capacitors open), the global ``gmin``, and the source
    scaling factor used during source-stepping homotopy.
    """

    __slots__ = ("index", "x", "x_prev", "t", "dt", "gmin", "source_scale",
                 "method", "aux", "stats")

    def __init__(self, index: Dict[str, int], n: int) -> None:
        self.index = index
        self.x = np.zeros(n)
        self.x_prev = np.zeros(n)
        self.t = 0.0
        self.dt: Optional[float] = None
        self.gmin = 1e-12
        self.source_scale = 1.0
        self.method = "be"
        #: scratch storage for element integration state (e.g. trapezoidal
        #: capacitor currents), keyed by element name.
        self.aux: Dict[str, float] = {}
        #: deterministic per-run solver accounting (always collected,
        #: independent of the observability switch — the verification
        #: harness relies on these being available and reproducible).
        self.stats: Dict[str, int] = {
            "newton_solves": 0,
            "newton_iterations": 0,
            "linear_solves": 0,
            "subdivisions": 0,
        }

    def voltage(self, i: int) -> float:
        """Present Newton-estimate voltage of unknown ``i`` (ground = 0)."""
        return 0.0 if i < 0 else float(self.x[i])

    def voltage_prev(self, i: int) -> float:
        return 0.0 if i < 0 else float(self.x_prev[i])


class Assembler:
    """Binds a circuit's elements to MNA indices and builds systems.

    ``fast_path=True`` (default) enables stamp partitioning, the cached
    static matrix, the vectorised MOSFET group and LU reuse;
    ``fast_path=False`` restamps every element through its Python
    ``stamp()`` on every build, exactly as the original engine did.
    """

    def __init__(self, circuit: Circuit, fast_path: bool = True,
                 sparse: Optional[bool] = None) -> None:
        self.circuit = circuit
        self.fast_path = fast_path
        self.index = circuit.node_index()
        self.n_nodes = len(circuit.nodes())
        offset = self.n_nodes
        for elem in circuit.elements:
            branches = getattr(elem, "n_branches", 0)
            if branches:
                elem.bind(self.index, branch_offset=offset)
                offset += branches
            else:
                elem.bind(self.index)
        self.n = offset
        self.node_names = circuit.nodes()
        self._scratch = MNASystem(self.n)
        self._node_diag = np.arange(self.n_nodes)
        #: route solves through CSC/SuperLU instead of dense LAPACK.
        #: Auto-selected by unknown count (see :func:`sparse_threshold`);
        #: only meaningful on the fast path (the reference engine stays
        #: dense by definition).
        if sparse is None:
            self.use_sparse = fast_path and self.n >= sparse_threshold()
        else:
            self.use_sparse = bool(sparse) and fast_path

        # --- stamp partition ------------------------------------------
        from repro.spice.elements import (
            PARTITION_NONLINEAR, PARTITION_SPLIT, PARTITION_STATIC)
        from repro.spice.fastpath import MOSFETGroup
        from repro.spice.mosfet import MOSFET

        from repro.spice.elements import CurrentSource, VoltageSource

        self._static_elems: List = []    # full stamp lives in the cache
        self._split_elems: List = []     # stamp_static cached, stamp_dynamic per build
        self._dynamic_elems: List = []   # full stamp every build
        self._nonlinear_elems: List = []  # full stamp every Newton iteration
        self._const_rhs_elems: List = []  # constant-valued sources: b cached
        self._rhs_split_elems: List = []  # split elements restamped per build
        mosfets: List = []

        def _const_source(elem) -> bool:
            return (type(elem) in (VoltageSource, CurrentSource)
                    and isinstance(elem.value, (int, float)))

        for elem in circuit.elements:
            part = getattr(elem, "partition", None)
            if part == PARTITION_STATIC:
                self._static_elems.append(elem)
            elif part == PARTITION_SPLIT:
                self._split_elems.append(elem)
                if fast_path and _const_source(elem):
                    self._const_rhs_elems.append(elem)
                else:
                    self._rhs_split_elems.append(elem)
            elif part == PARTITION_NONLINEAR:
                # Plain level-1 MOSFETs are claimed by the vectorised
                # group; subclasses and other nonlinear elements keep
                # their scalar stamp.
                if fast_path and type(elem) is MOSFET:
                    mosfets.append(elem)
                else:
                    self._nonlinear_elems.append(elem)
            elif fast_path and _const_source(elem):
                self._const_rhs_elems.append(elem)
            else:
                self._dynamic_elems.append(elem)
        self._mosfet_group = MOSFETGroup(mosfets, self.n) if mosfets else None
        self._static_key: Optional[Tuple] = None
        self._g_static: Optional[np.ndarray] = None
        self._b_const = np.zeros(self.n)
        self._b_key: Optional[Tuple] = None
        self._lu = None
        self._lu_key: Optional[Tuple] = None
        self._splu = None
        self._splu_key: Optional[Tuple] = None

    @property
    def is_linear(self) -> bool:
        """True when no element's G stamp depends on the Newton estimate
        (the per-configuration matrix is constant across iterations and
        timesteps)."""
        return not self._nonlinear_elems and self._mosfet_group is None

    def new_state(self) -> SimState:
        return SimState(self.index, self.n)

    def invalidate(self) -> None:
        """Drop cached matrices/factorizations (call after mutating an
        element's value in place)."""
        self._static_key = None
        self._g_static = None
        self._b_key = None
        self._lu = None
        self._lu_key = None
        self._splu = None
        self._splu_key = None

    def _refresh_static(self, state: SimState) -> None:
        """Restamp the static portion of G for the present configuration."""
        sys = self._scratch
        sys.reset()
        for elem in self._static_elems:
            elem.stamp(sys, state)
        for elem in self._split_elems:
            elem.stamp_static(sys, state)
        if self._mosfet_group is not None:
            self._mosfet_group.stamp_static(sys.g, state)
        if state.gmin > 0.0:
            sys.g[self._node_diag, self._node_diag] += state.gmin
        if self._g_static is None:
            self._g_static = sys.g.copy()
        else:
            np.copyto(self._g_static, sys.g)
        self._static_key = (state.dt, state.method, state.gmin)
        if OBS.enabled:
            OBS.metrics.counter("mna.static_refreshes").inc()

    def static_matrix(self, state: SimState) -> np.ndarray:
        """The cached static-G for the state's configuration (read-only)."""
        key = (state.dt, state.method, state.gmin)
        if key != self._static_key:
            self._refresh_static(state)
        return self._g_static

    def build(self, state: SimState) -> MNASystem:
        """Assemble ``G x = b`` for the present state (one Newton step).

        Returns the assembler's scratch system — callers must not hold a
        reference across iterations.
        """
        sys = self._scratch
        if not self.fast_path:
            sys.reset()
            for elem in self.circuit.elements:
                elem.stamp(sys, state)
            # gmin from every node (not branch) to ground keeps the matrix
            # nonsingular for floating nodes and helps Newton convergence.
            if state.gmin > 0.0:
                sys.g[self._node_diag, self._node_diag] += state.gmin
            return sys

        key = (state.dt, state.method, state.gmin)
        if key != self._static_key:
            self._refresh_static(state)
        elif OBS.enabled:
            OBS.metrics.counter("mna.static_reuses").inc()
        bkey = (self._static_key, state.source_scale)
        if bkey != self._b_key:
            self._refresh_b_const(state, bkey)
        np.copyto(sys.g, self._g_static)
        np.copyto(sys.b, self._b_const)
        for elem in self._rhs_split_elems:
            elem.stamp_dynamic(sys, state)
        for elem in self._dynamic_elems:
            elem.stamp(sys, state)
        for elem in self._nonlinear_elems:
            elem.stamp(sys, state)
        if self._mosfet_group is not None:
            self._mosfet_group.stamp_newton(sys, state)
        return sys

    def _refresh_b_const(self, state: SimState, bkey: Tuple) -> None:
        """Re-cache the RHS of constant-valued independent sources (their
        contribution changes only with the homotopy source scale)."""
        sys = self._scratch
        sys.b[:] = 0.0
        from repro.spice.elements import VoltageSource
        for elem in self._const_rhs_elems:
            # Both paths touch only b: VoltageSource via its dynamic
            # part, CurrentSource via its full (b-only) stamp.
            if isinstance(elem, VoltageSource):
                elem.stamp_dynamic(sys, state)
            else:
                elem.stamp(sys, state)
        np.copyto(self._b_const, sys.b)
        self._b_key = bkey

    def solve_cached_lu(self, sys: MNASystem) -> np.ndarray:
        """Solve via an LU factorization cached per static configuration.

        Only valid for linear circuits, where the built matrix equals
        the static matrix: one factorization then serves every timestep
        (back-substitution only).
        """
        if self._lu_key != self._static_key or self._lu is None:
            self._lu = scipy.linalg.lu_factor(sys.g, check_finite=False)
            self._lu_key = self._static_key
            if OBS.enabled:
                OBS.metrics.counter("mna.lu_factorizations").inc()
        elif OBS.enabled:
            OBS.metrics.counter("mna.lu_reuses").inc()
        lu, piv = self._lu
        x, info = _lapack.dgetrs(lu, piv, sys.b)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"dgetrs failed (info={info}) on cached factorization")
        return x

    def solve_cached_splu(self, sys: MNASystem) -> np.ndarray:
        """Sparse twin of :meth:`solve_cached_lu`: SuperLU-factorise the
        (constant, for linear circuits) matrix once per static
        configuration, then only back-substitute per call.  The column
        ordering SuperLU computes — the symbolic analysis — is the
        expensive part for a fixed sparsity pattern; holding the whole
        factor object reuses it for free."""
        if self._splu_key != self._static_key or self._splu is None:
            self._splu = _factorize_sparse(sys.g)
            self._splu_key = self._static_key
        elif OBS.enabled:
            OBS.metrics.counter("mna.sparse_reuses").inc()
        return self._splu.solve(sys.b)

    def solve_sparse(self, sys: MNASystem) -> np.ndarray:
        """One sparse solve of the freshly built system (nonlinear path:
        the Jacobian changes every Newton iteration, so the factor is
        not cached — the matrix is converted and factorised per call).

        The pattern is deliberately rebuilt from the dense scratch
        matrix each time rather than refilled into a frozen pattern: a
        Jacobian entry that happens to be exactly 0.0 when a pattern
        would have been frozen must still stamp later iterations.
        """
        return _factorize_sparse(sys.g).solve(sys.b)

    def voltages(self, x: np.ndarray) -> Dict[str, float]:
        """Translate a solution vector into a node-voltage dict."""
        result = {GROUND: 0.0}
        for name, idx in self.index.items():
            if idx >= 0:
                result[name] = float(x[idx])
        return result
