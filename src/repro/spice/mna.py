"""MNA matrix assembly and simulation state shared by DC and transient."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.spice.netlist import Circuit, GROUND


class MNASystem:
    """The linear system ``G x = b`` rebuilt every Newton iteration.

    Row/column indices are MNA unknown indices; ``-1`` denotes ground and
    is silently skipped by the stamping helpers.  The matrices are
    allocated once and zeroed per iteration (:meth:`reset`) — the
    allocation, not the arithmetic, dominates small-circuit solves.
    """

    __slots__ = ("n", "g", "b")

    def __init__(self, n: int) -> None:
        self.n = n
        self.g = np.zeros((n, n))
        self.b = np.zeros(n)

    def reset(self) -> None:
        self.g[:] = 0.0
        self.b[:] = 0.0

    def add_g(self, i: int, j: int, value: float) -> None:
        if i >= 0 and j >= 0:
            self.g[i, j] += value

    def add_conductance(self, a: int, b: int, g: float) -> None:
        """Stamp a two-terminal conductance between unknowns a and b."""
        self.add_g(a, a, g)
        self.add_g(b, b, g)
        self.add_g(a, b, -g)
        self.add_g(b, a, -g)

    def add_transconductance(self, out_p: int, out_m: int,
                             in_p: int, in_m: int, gm: float) -> None:
        """Stamp a VCCS: current gm*(v_inp - v_inm) flowing out_p → out_m."""
        self.add_g(out_p, in_p, gm)
        self.add_g(out_p, in_m, -gm)
        self.add_g(out_m, in_p, -gm)
        self.add_g(out_m, in_m, gm)

    def add_b(self, i: int, value: float) -> None:
        if i >= 0:
            self.b[i] += value

    def add_current(self, a: int, b: int, current: float) -> None:
        """Stamp an independent current flowing from node a to node b."""
        self.add_b(a, -current)
        self.add_b(b, current)

    def solve(self) -> np.ndarray:
        return np.linalg.solve(self.g, self.b)


class SimState:
    """Context handed to every element's ``stamp`` call.

    Carries the present Newton estimate ``x``, the previous-timestep
    solution ``x_prev``, timing information (``dt is None`` means DC
    analysis: capacitors open), the global ``gmin``, and the source
    scaling factor used during source-stepping homotopy.
    """

    __slots__ = ("index", "x", "x_prev", "t", "dt", "gmin", "source_scale",
                 "method", "aux")

    def __init__(self, index: Dict[str, int], n: int) -> None:
        self.index = index
        self.x = np.zeros(n)
        self.x_prev = np.zeros(n)
        self.t = 0.0
        self.dt: Optional[float] = None
        self.gmin = 1e-12
        self.source_scale = 1.0
        self.method = "be"
        #: scratch storage for element integration state (e.g. trapezoidal
        #: capacitor currents), keyed by element name.
        self.aux: Dict[str, float] = {}

    def voltage(self, i: int) -> float:
        """Present Newton-estimate voltage of unknown ``i`` (ground = 0)."""
        return 0.0 if i < 0 else float(self.x[i])

    def voltage_prev(self, i: int) -> float:
        return 0.0 if i < 0 else float(self.x_prev[i])


class Assembler:
    """Binds a circuit's elements to MNA indices and builds systems."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.index = circuit.node_index()
        self.n_nodes = len(circuit.nodes())
        offset = self.n_nodes
        for elem in circuit.elements:
            branches = getattr(elem, "n_branches", 0)
            if branches:
                elem.bind(self.index, branch_offset=offset)
                offset += branches
            else:
                elem.bind(self.index)
        self.n = offset
        self.node_names = circuit.nodes()
        self._scratch = MNASystem(self.n)

    def new_state(self) -> SimState:
        return SimState(self.index, self.n)

    def build(self, state: SimState) -> MNASystem:
        """Assemble ``G x = b`` for the present state (one Newton step).

        Returns the assembler's scratch system — callers must not hold a
        reference across iterations.
        """
        sys = self._scratch
        sys.reset()
        for elem in self.circuit.elements:
            elem.stamp(sys, state)
        # gmin from every node (not branch) to ground keeps the matrix
        # nonsingular for floating nodes and helps Newton convergence.
        if state.gmin > 0.0:
            for i in range(self.n_nodes):
                sys.g[i, i] += state.gmin
        return sys

    def voltages(self, x: np.ndarray) -> Dict[str, float]:
        """Translate a solution vector into a node-voltage dict."""
        result = {GROUND: 0.0}
        for name, idx in self.index.items():
            if idx >= 0:
                result[name] = float(x[idx])
        return result
