"""Level-1 (square-law) MOSFET model.

The paper's circuits are 5 µm CMOS; at that node the classic SPICE level-1
model (square law with channel-length modulation) is the appropriate
abstraction and is what the qualitative fault behaviour depends on.

The model is symmetric in drain/source (terminals swap when ``vds < 0``),
ignores the body terminal (sources are tied to their local body in the
paper's gate-array macros), and adds a small drain-source leakage
conductance for numerical robustness in cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.spice.elements import PARTITION_NONLINEAR, Element, _stamp_cond


@dataclass(frozen=True)
class MOSParams:
    """Process parameters for a level-1 device."""

    polarity: int          # +1 NMOS, -1 PMOS
    vto: float             # threshold voltage (positive number for both)
    kp: float              # transconductance parameter mu*Cox [A/V^2]
    lam: float = 0.02      # channel-length modulation [1/V]
    cgs_per_area: float = 0.35e-3   # gate-source cap density [F/m^2]
    cgd_overlap: float = 0.2e-9     # gate-drain overlap cap per width [F/m]
    g_leak: float = 1e-9   # off-state drain-source leakage conductance [S]

    def scaled(self, **kwargs) -> "MOSParams":
        return replace(self, **kwargs)


#: Representative 5 µm CMOS gate-array process corner.
NMOS_5U = MOSParams(polarity=+1, vto=1.0, kp=20e-6, lam=0.02)
PMOS_5U = MOSParams(polarity=-1, vto=1.0, kp=8e-6, lam=0.02)


class MOSFET(Element):
    """Three-terminal level-1 MOSFET (drain, gate, source)."""

    partition = PARTITION_NONLINEAR

    def __init__(self, name: str, d: str, g: str, s: str,
                 params: MOSParams, w: float = 10e-6, l: float = 5e-6) -> None:
        if w <= 0 or l <= 0:
            raise ValueError(f"{name}: W and L must be positive")
        super().__init__(name, d, g, s)
        self.params = params
        self.w = float(w)
        self.l = float(l)

    @property
    def beta(self) -> float:
        """Device transconductance factor kp * W / L."""
        return self.params.kp * self.w / self.l

    # ------------------------------------------------------------------
    # Device equations
    # ------------------------------------------------------------------
    def evaluate(self, vd: float, vg: float, vs: float) -> Tuple[float, float, float]:
        """Return ``(ids, di/dvd, di/dvg)`` at the given terminal voltages.

        ``ids`` is the current flowing into the drain terminal and out of
        the source terminal (negative for a conducting PMOS or when the
        terminals are operating swapped).  The full Jacobian used by the
        Newton stamp is available from :meth:`_small_signal`.
        """
        ids, di_dd, di_dg, _di_ds = self._small_signal(vd, vg, vs)
        return ids, di_dd, di_dg

    # ------------------------------------------------------------------
    def _small_signal(self, vd: float, vg: float, vs: float):
        """Numerically robust small-signal parameters via the analytic
        equations, returned as the Jacobian of i_d with respect to
        (vd, vg, vs) in the external frame."""
        pol = self.params.polarity
        vd_n, vg_n, vs_n = pol * vd, pol * vg, pol * vs
        swapped = vd_n < vs_n
        d, s = (vs_n, vd_n) if swapped else (vd_n, vs_n)
        vgs = vg_n - s
        vds = d - s
        vov = vgs - self.params.vto
        beta = self.beta
        lam = self.params.lam
        if vov <= 0.0:
            ids, gm, gds = 0.0, 0.0, 0.0
        elif vds < vov:
            ids = beta * (vov * vds - 0.5 * vds * vds) * (1.0 + lam * vds)
            gm = beta * vds * (1.0 + lam * vds)
            gds = (beta * (vov - vds) * (1.0 + lam * vds)
                   + beta * (vov * vds - 0.5 * vds * vds) * lam)
        else:
            ids = 0.5 * beta * vov * vov * (1.0 + lam * vds)
            gm = beta * vov * (1.0 + lam * vds)
            gds = 0.5 * beta * vov * vov * lam
        # Drain-source leakage: a real (if tiny) ohmic term, which also
        # keeps the Jacobian nonsingular in cutoff.  Applied uniformly so
        # current and derivatives stay consistent.
        ids += self.params.g_leak * vds
        gds += self.params.g_leak
        # Internal frame: i flows d->s; di/dd = gds, di/dg = gm,
        # di/ds = -(gm + gds).
        if swapped:
            # Internal drain is the external source and vice versa, and the
            # external drain current is -i_int:
            #   i_ext(vd, vg, vs) = -I(vd'=vs, vg, vs'=vd)
            i_ext = -ids
            di_dd_ext, di_dg_ext, di_ds_ext = gm + gds, -gm, -gds
        else:
            i_ext = ids
            di_dd_ext, di_dg_ext, di_ds_ext = gds, gm, -(gm + gds)
        # Undo polarity normalisation: i_true = pol * i_n(pol*v) so the
        # Jacobian in true voltages equals the normalised Jacobian.
        return pol * i_ext, di_dd_ext, di_dg_ext, di_ds_ext

    def stamp(self, sys, state) -> None:
        d, g, s = self._idx
        vd = state.voltage(d)
        vg = state.voltage(g)
        vs = state.voltage(s)
        i0, di_dd, di_dg, di_ds = self._small_signal(vd, vg, vs)
        # Newton companion: i(v) ≈ i0 + J . (v - v0)
        # Current flows drain -> source externally (i0 may be negative).
        ieq = i0 - (di_dd * vd + di_dg * vg + di_ds * vs)
        # KCL at drain: +i ; at source: -i
        for col, deriv in ((d, di_dd), (g, di_dg), (s, di_ds)):
            sys.add_g(d, col, deriv)
            sys.add_g(s, col, -deriv)
        sys.add_current(d, s, ieq)
        # Gate capacitances give the transient its dynamics.  They are
        # integrated with backward Euler regardless of the global method
        # (adequate: they are small and heavily damped).
        if state.dt is not None:
            self._stamp_cap(sys, state, g, s,
                            self.params.cgs_per_area * self.w * self.l)
            self._stamp_cap(sys, state, g, d, self.params.cgd_overlap * self.w)

    @staticmethod
    def _stamp_cap(sys, state, a: int, b: int, cap: float) -> None:
        if cap <= 0.0:
            return
        geq = cap / state.dt
        v_prev = state.voltage_prev(a) - state.voltage_prev(b)
        sys.add_conductance(a, b, geq)
        sys.add_current(a, b, -geq * v_prev)

    def stamp_ac(self, g_mat, c_mat, op) -> None:
        d, g, s = self._idx
        vd = self._v(op, d)
        vg = self._v(op, g)
        vs = self._v(op, s)
        _i0, di_dd, di_dg, di_ds = self._small_signal(vd, vg, vs)
        for col, deriv in ((d, di_dd), (g, di_dg), (s, di_ds)):
            if col >= 0:
                if d >= 0:
                    g_mat[d, col] += deriv
                if s >= 0:
                    g_mat[s, col] -= deriv
        # Gate capacitances: Cgs to source, Cgd overlap to drain.
        cgs = self.params.cgs_per_area * self.w * self.l
        cgd = self.params.cgd_overlap * self.w
        _stamp_cond(c_mat, g, s, cgs)
        _stamp_cond(c_mat, g, d, cgd)

    def operating_region(self, vd: float, vg: float, vs: float) -> str:
        """Classify the OP: ``cutoff``, ``triode`` or ``saturation``."""
        pol = self.params.polarity
        vd_n, vg_n, vs_n = pol * vd, pol * vg, pol * vs
        if vd_n < vs_n:
            vd_n, vs_n = vs_n, vd_n
        vov = (vg_n - vs_n) - self.params.vto
        if vov <= 0.0:
            return "cutoff"
        return "triode" if (vd_n - vs_n) < vov else "saturation"

    def clone(self) -> "MOSFET":
        return MOSFET(self.name, *self.nodes, self.params, w=self.w, l=self.l)

    def describe(self) -> str:
        kind = "NMOS" if self.params.polarity > 0 else "PMOS"
        return (f"M {self.name} {self.nodes[0]} {self.nodes[1]} {self.nodes[2]} "
                f"{kind} W={self.w:g} L={self.l:g}")
