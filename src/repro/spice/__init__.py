"""Transient circuit simulator — the reproduction's HSPICE substitute.

A compact modified-nodal-analysis (MNA) engine with:

* linear elements (resistor, capacitor, independent/controlled sources,
  ideal switch),
* level-1 (square-law) NMOS/PMOS models with channel-length modulation,
* Newton–Raphson DC operating point with gmin and source stepping,
* fixed-step transient analysis (backward Euler or trapezoidal) with
  automatic local step subdivision on Newton failure,
* small-signal linearisation at an operating point, giving (G, C) matrix
  pencils from which poles, zeros and transfer functions are extracted —
  the "HSPICE poles/zeros/constants" step of the paper's second method,
* a batched transient engine (:func:`batched_transient`) marching K
  faulty variants of one circuit in lockstep, and a sparse (CSC + splu)
  solver route that engages automatically above
  :func:`sparse_threshold` unknowns.

The engine targets the paper's scale (tens of transistors) and favours
robustness and clarity over raw speed.
"""

from repro.spice.netlist import Circuit
from repro.spice.elements import (
    Resistor,
    Capacitor,
    Inductor,
    VoltageSource,
    CurrentSource,
    VCVS,
    VCCS,
    Switch,
)
from repro.spice.mosfet import MOSFET, MOSParams, NMOS_5U, PMOS_5U
from repro.spice.solver import dc_operating_point, NewtonError
from repro.spice.transient import transient, TransientResult, GridMismatchWarning
from repro.spice.validate import DeckError, validate_deck
from repro.spice.ac import ACSweepResult, ac_sweep
from repro.spice.parser import NetlistSyntaxError, ParseResult, parse_netlist, parse_value
from repro.spice.linearize import (
    FrequencyPencil,
    small_signal_matrices,
    circuit_poles,
    circuit_zeros,
    transfer_function_at,
    extract_transfer_function,
)
from repro.spice.mna import sparse_threshold
from repro.spice.batched import BatchedMarch, batched_transient

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Switch",
    "MOSFET",
    "MOSParams",
    "NMOS_5U",
    "PMOS_5U",
    "dc_operating_point",
    "NewtonError",
    "DeckError",
    "validate_deck",
    "transient",
    "TransientResult",
    "GridMismatchWarning",
    "ACSweepResult",
    "ac_sweep",
    "NetlistSyntaxError",
    "ParseResult",
    "parse_netlist",
    "parse_value",
    "FrequencyPencil",
    "small_signal_matrices",
    "circuit_poles",
    "circuit_zeros",
    "transfer_function_at",
    "extract_transfer_function",
    "sparse_threshold",
    "BatchedMarch",
    "batched_transient",
]
