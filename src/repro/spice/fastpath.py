"""Fast-path machinery for the MNA engine.

Three independent accelerations live here, all exactness-preserving to
within floating-point reassociation (the equivalence suite pins them to
the reference engine at 1e-9 V):

* :class:`MOSFETGroup` — vectorised square-law evaluation and scatter
  stamping for every level-1 MOSFET in a circuit.  One set of numpy
  operations per Newton iteration replaces the per-device Python
  ``stamp()`` loop; the state-independent gate-capacitance conductances
  are hoisted into the assembler's cached static matrix.
* :class:`LinearMarch` — closed-form transient recurrence for fully
  linear circuits under backward Euler.  The per-step MNA solve
  ``G x_k = E x_{k-1} + b_src(t_k)`` collapses to
  ``x_k = A x_{k-1} + sum_s level_s(t_k) * c_s`` with ``A = G^-1 E`` and
  per-source response columns ``c_s = G^-1 e_s``, i.e. one factorisation
  for the whole march and a couple of BLAS-2 operations per step.
* eligibility helpers used by :func:`repro.spice.transient.transient`
  and :func:`repro.spice.solver.newton_solve` to decide when the fast
  paths apply and when to fall back to the generic engine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.core import OBS
from repro.resilience.deadline import DEADLINE
from repro.spice.elements import (
    VCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
    evaluate_source,
)


class MOSFETGroup:
    """Vectorised Newton stamping for a set of level-1 MOSFETs.

    The group pre-computes device-parameter arrays and scatter index
    arrays at assembly time; each Newton iteration is then a fixed
    sequence of numpy operations over all devices at once.  The device
    equations mirror :meth:`repro.spice.mosfet.MOSFET._small_signal`
    operation for operation so the per-device values are bitwise
    identical to the scalar path — only the order in which contributions
    are summed into shared matrix entries differs.
    """

    def __init__(self, devices: Sequence, n: int) -> None:
        self.devices = list(devices)
        self.n = n
        nd = len(self.devices)
        self.pol = np.array([d.params.polarity for d in devices], dtype=float)
        self.vto = np.array([d.params.vto for d in devices])
        self.beta = np.array([d.beta for d in devices])
        self.lam = np.array([d.params.lam for d in devices])
        self.g_leak = np.array([d.params.g_leak for d in devices])

        idx = np.array([d._idx for d in devices], dtype=np.intp)  # (nd, 3): d,g,s
        # Gather indices: ground (-1) is redirected to a zero slot at
        # position n of the extended solution vector.  The transposed
        # flat layout [all d | all g | all s] lets one fancy-index pull
        # every terminal voltage at once.
        self._gather = np.where(idx < 0, n, idx)
        self._gather_t = self._gather.T.copy().ravel()
        self._xext = np.zeros(n + 1)
        self._pext = np.zeros(n + 1)
        self._jbuf = np.empty(3 * nd)

        # --- Jacobian scatter table -----------------------------------
        # Per device, the scalar stamp adds, for col in (d, g, s):
        #   G[d, col] += dI/dcol ;  G[s, col] -= dI/dcol
        # kind 0/1/2 selects dI/dvd, dI/dvg, dI/dvs.
        rows, cols, kinds, devs, signs = [], [], [], [], []
        for i, (d, g, s) in enumerate(idx):
            for kind, col in enumerate((d, g, s)):
                for row, sign in ((d, 1.0), (s, -1.0)):
                    if row >= 0 and col >= 0:
                        rows.append(row)
                        cols.append(col)
                        kinds.append(kind)
                        devs.append(i)
                        signs.append(sign)
        self._g_flat = np.array(rows, dtype=np.intp) * n + np.array(cols, dtype=np.intp)
        # J is laid out as concatenate((dI/dvd, dI/dvg, dI/dvs)).
        self._j_gather = np.array(kinds, dtype=np.intp) * nd + np.array(devs, dtype=np.intp)
        self._j_signs = np.array(signs)

        # --- RHS scatter table (companion current d -> s) --------------
        # add_current(d, s, ieq):  b[d] -= ieq ;  b[s] += ieq
        b_idx, b_signs, b_devs = [], [], []
        for i, (d, _g, s) in enumerate(idx):
            for row, sign in ((d, -1.0), (s, 1.0)):
                if row >= 0:
                    b_idx.append(row)
                    b_signs.append(sign)
                    b_devs.append(i)
        self._b_idx = np.array(b_idx, dtype=np.intp)
        self._b_signs = np.array(b_signs)
        self._b_devs = np.array(b_devs, dtype=np.intp)

        # --- Gate capacitances ----------------------------------------
        # Two linear capacitors per device: (g, s, Cgs) and (g, d, Cgd).
        # Their conductance geq = C/dt is state-independent (static for a
        # fixed dt); their companion current depends on x_prev (per step).
        cap_a, cap_b, cap_c = [], [], []
        for i, dev in enumerate(self.devices):
            d, g, s = idx[i]
            for a, b, c in ((g, s, dev.params.cgs_per_area * dev.w * dev.l),
                            (g, d, dev.params.cgd_overlap * dev.w)):
                if c > 0.0:
                    cap_a.append(a)
                    cap_b.append(b)
                    cap_c.append(c)
        self._cap_a = np.array(cap_a, dtype=np.intp)
        self._cap_b = np.array(cap_b, dtype=np.intp)
        self._cap_c = np.array(cap_c)
        self._cap_ga = np.where(self._cap_a < 0, n, self._cap_a)
        self._cap_gb = np.where(self._cap_b < 0, n, self._cap_b)
        # Conductance scatter: (a,a)+, (b,b)+, (a,b)-, (b,a)-.
        cg_flat, cg_signs, cg_caps = [], [], []
        for k in range(len(cap_c)):
            a, b = cap_a[k], cap_b[k]
            for r, c, sign in ((a, a, 1.0), (b, b, 1.0), (a, b, -1.0), (b, a, -1.0)):
                if r >= 0 and c >= 0:
                    cg_flat.append(r * n + c)
                    cg_signs.append(sign)
                    cg_caps.append(k)
        self._cg_flat = np.array(cg_flat, dtype=np.intp)
        self._cg_signs = np.array(cg_signs)
        self._cg_caps = np.array(cg_caps, dtype=np.intp)
        # Companion-current scatter: add_current(a, b, -geq*v_prev) puts
        # +geq*v_prev at a and -geq*v_prev at b.
        cb_idx, cb_signs, cb_caps = [], [], []
        for k in range(len(cap_c)):
            for node, sign in ((cap_a[k], 1.0), (cap_b[k], -1.0)):
                if node >= 0:
                    cb_idx.append(node)
                    cb_signs.append(sign)
                    cb_caps.append(k)
        self._cb_idx = np.array(cb_idx, dtype=np.intp)
        self._cb_signs = np.array(cb_signs)
        self._cb_caps = np.array(cb_caps, dtype=np.intp)

    # ------------------------------------------------------------------
    def stamp_static(self, g_mat: np.ndarray, state) -> None:
        """Stamp the gate-capacitance conductances (transient only)."""
        if state.dt is None or len(self._cap_c) == 0:
            return
        geq = self._cap_c / state.dt
        np.add.at(g_mat.ravel(), self._cg_flat, self._cg_signs * geq[self._cg_caps])

    def stamp_newton(self, sys, state) -> None:
        """Stamp the square-law Jacobian/companions plus gate-cap RHS."""
        nd = len(self.devices)
        xext = self._xext
        xext[:self.n] = state.x
        v_all = xext[self._gather_t]
        vd, vg, vs = v_all[:nd], v_all[nd:2 * nd], v_all[2 * nd:]
        i0, di_dd, di_dg, di_ds = self._small_signal(vd, vg, vs)
        jac = np.concatenate((di_dd, di_dg, di_ds), out=self._jbuf)
        np.add.at(sys.g.ravel(), self._g_flat,
                  self._j_signs * jac[self._j_gather])
        ieq = i0 - (di_dd * vd + di_dg * vg + di_ds * vs)
        np.add.at(sys.b, self._b_idx, self._b_signs * ieq[self._b_devs])
        if state.dt is not None and len(self._cap_c):
            pext = self._pext
            pext[:self.n] = state.x_prev
            v_prev = pext[self._cap_ga] - pext[self._cap_gb]
            flow = (self._cap_c / state.dt) * v_prev
            np.add.at(sys.b, self._cb_idx, self._cb_signs * flow[self._cb_caps])

    def _small_signal(self, vd, vg, vs):
        """Vectorised mirror of ``MOSFET._small_signal``.

        The triode/saturation branches collapse into one expression via
        the effective drain swing ``vde = min(vds, vov)``: with
        ``vde = vds`` the formulas are the triode ones, with
        ``vde = vov`` they reduce to the saturation ones (the
        channel-length-modulation factor uses the true ``vds`` in both
        regions, as the scalar model does).
        """
        pol = self.pol
        vd_n, vg_n, vs_n = pol * vd, pol * vg, pol * vs
        swapped = vd_n < vs_n
        d = np.maximum(vd_n, vs_n)
        s = np.minimum(vd_n, vs_n)
        vgs = vg_n - s
        vds = d - s
        vov = vgs - self.vto
        beta, lam = self.beta, self.lam
        vde = np.minimum(vds, vov)
        one_lam = lam * vds
        one_lam += 1.0
        parab = (vov - 0.5 * vde) * vde
        bparab = beta * parab
        ids = bparab * one_lam
        gm = beta * vde * one_lam
        gds = beta * (vov - vde) * one_lam + bparab * lam
        active = vov > 0.0
        ids *= active
        gm *= active
        gds *= active
        ids += self.g_leak * vds
        gds += self.g_leak
        # Terminal-frame Jacobian; `swapped` devices see the external
        # drain as internal source (see MOSFET._small_signal).
        sgn = 1.0 - 2.0 * swapped
        gm_gds = gm + gds
        di_dd = gds + swapped * gm
        di_dg = sgn * gm
        di_ds = -(gm_gds - swapped * gm)
        i0 = (pol * sgn) * ids
        return i0, di_dd, di_dg, di_ds


# ----------------------------------------------------------------------
# Linear transient march
# ----------------------------------------------------------------------

#: Element classes whose semantics the linear march reproduces exactly.
#: Exact-type matching is deliberate: a subclass may override ``stamp``
#: with behaviour the recurrence does not model.
_MARCH_TYPES = (Resistor, Capacitor, Inductor, VoltageSource, CurrentSource,
                VCVS, VCCS)


def linear_march_supported(circuit, method: str) -> bool:
    """True when :class:`LinearMarch` reproduces the generic engine."""
    if method != "be":
        return False
    return all(type(e) in _MARCH_TYPES for e in circuit.elements)


class LinearMarch:
    """One-factorisation transient recurrence for linear circuits.

    Backward-Euler companion models make each step a solve of
    ``G x_k = E x_{k-1} + b_src(t_k)`` with constant ``G`` (conductances,
    capacitor ``C/dt`` terms, controlled-source patterns, gmin) and
    ``E`` collecting the capacitor companion-current coupling to the
    previous solution.  Pre-multiplying by ``G^-1`` once turns the march
    into a matrix-vector recurrence.

    Raises :class:`numpy.linalg.LinAlgError` at construction when ``G``
    is singular — callers fall back to the generic engine, which raises
    the same :class:`~repro.spice.solver.NewtonError` the reference
    engine would.
    """

    def __init__(self, assembler, dt: float, gmin: float) -> None:
        self.assembler = assembler
        self.n = assembler.n
        state = assembler.new_state()
        state.dt = dt
        state.method = "be"
        state.gmin = gmin
        g_static = assembler.static_matrix(state)
        g_inv = np.linalg.inv(g_static)
        if not np.all(np.isfinite(g_inv)):
            raise np.linalg.LinAlgError("singular MNA matrix")
        if OBS.enabled:
            OBS.metrics.counter("mna.lu_factorizations").inc()

        # Capacitor coupling matrix E: add_current(a, b, -geq * v_prev)
        # contributes +geq*(x[a]-x[b]) at row a and -geq*(x[a]-x[b]) at
        # row b — the usual conductance pattern.
        e_mat = np.zeros((self.n, self.n))
        for cap in assembler.circuit.elements_of_type(Capacitor):
            a, b = cap._idx
            geq = cap.capacitance / dt
            for r, c, sign in ((a, a, 1.0), (b, b, 1.0), (a, b, -1.0), (b, a, -1.0)):
                if r >= 0 and c >= 0:
                    e_mat[r, c] += sign * geq
        # Inductor companion: row j's RHS is -(L/dt) * I_prev, with the
        # branch current I an MNA unknown — a diagonal E entry.
        for ind in assembler.circuit.elements_of_type(Inductor):
            j = ind.branch_index()
            e_mat[j, j] -= ind.inductance / dt
        self._a_mat = g_inv @ e_mat

        # Per-source response columns: x contribution = level(t) * col.
        self._const = np.zeros(self.n)
        self._tv: List[Tuple[np.ndarray, object]] = []
        for elem in assembler.circuit.elements:
            if isinstance(elem, VoltageSource):
                col = g_inv[:, elem.branch_index()].copy()
            elif isinstance(elem, CurrentSource):
                a, b = elem._idx
                col = np.zeros(self.n)
                if a >= 0:
                    col -= g_inv[:, a]
                if b >= 0:
                    col += g_inv[:, b]
            else:
                continue
            if isinstance(elem.value, (int, float)):
                self._const += float(elem.value) * col
            else:
                self._tv.append((col, elem.value))

    def run(self, x0: np.ndarray, times: np.ndarray) -> Optional[np.ndarray]:
        """March the recurrence; rows of the result are the solutions at
        ``times``.  Returns ``None`` on numerical breakdown (caller falls
        back to the generic engine)."""
        n_pts = len(times)
        x_all = np.empty((n_pts, self.n))
        x_all[0] = x0
        a_mat, const, tv = self._a_mat, self._const, self._tv
        x = x_all[0]
        for k in range(1, n_pts):
            # Cooperative cancellation: amortised to one clock read per
            # 256 recurrence steps so the march's hot loop stays hot.
            if DEADLINE.active is not None and not (k & 0xFF):
                DEADLINE.active.check("linear march")
            row = x_all[k]
            np.dot(a_mat, x, out=row)
            row += const
            if tv:
                t = times[k]
                for col, value in tv:
                    row += evaluate_source(value, t) * col
            x = row
        if not np.all(np.isfinite(x_all)):
            if OBS.enabled:
                OBS.metrics.counter("fastpath.linear_march_breakdowns").inc()
            return None
        if OBS.enabled:
            m = OBS.metrics
            m.counter("fastpath.linear_march_runs").inc()
            m.counter("fastpath.linear_march_steps").inc(n_pts - 1)
            # Each recurrence step is one application of the march's
            # single factorisation — the fast path's reuse currency.
            m.counter("mna.lu_reuses").inc(n_pts - 1)
        return x_all


class SparseLinearMarch:
    """Sparse-factor linear transient march for large circuits.

    Same recurrence as :class:`LinearMarch` — backward Euler makes each
    step ``G x_k = E x_{k-1} + b_src(t_k)`` with constant ``G`` — but
    where the dense march pre-multiplies by ``G^-1`` (an O(n^3) inverse
    plus an O(n^2) dense matvec per step, plus an O(n^2) dense ``A``
    that alone is prohibitive at 1000+ unknowns), this variant holds a
    SuperLU factorisation of CSC ``G`` and back-substitutes per step:

        ``x_k = lu.solve(E x_{k-1}) + const + sum_s level_s(t_k) c_s``

    ``E`` is kept sparse (one conductance quad per capacitor, one
    diagonal entry per inductor), so the per-step cost is two
    near-linear passes for the banded ladders that need this route.
    The symbolic analysis + numeric factorisation happen once for the
    whole march; per-source response columns ``c_s = G^-1 e_s`` are
    computed by back-substitution at construction.

    Results agree with the dense march/reference engine to solver
    round-off (the 1e-9 equivalence pins), not bitwise — a different
    factorisation orders the arithmetic differently.
    """

    def __init__(self, assembler, dt: float, gmin: float) -> None:
        import scipy.sparse

        from repro.spice.mna import _factorize_sparse

        self.assembler = assembler
        self.n = assembler.n
        state = assembler.new_state()
        state.dt = dt
        state.method = "be"
        state.gmin = gmin
        g_static = assembler.static_matrix(state)
        self._lu = _factorize_sparse(g_static)

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for cap in assembler.circuit.elements_of_type(Capacitor):
            a, b = cap._idx
            geq = cap.capacitance / dt
            for r, c, sign in ((a, a, 1.0), (b, b, 1.0),
                               (a, b, -1.0), (b, a, -1.0)):
                if r >= 0 and c >= 0:
                    rows.append(r)
                    cols.append(c)
                    vals.append(sign * geq)
        for ind in assembler.circuit.elements_of_type(Inductor):
            j = ind.branch_index()
            rows.append(j)
            cols.append(j)
            vals.append(-ind.inductance / dt)
        self._e_mat = scipy.sparse.csr_matrix(
            (vals, (rows, cols)), shape=(self.n, self.n))

        self._const = np.zeros(self.n)
        self._tv: List[Tuple[np.ndarray, object]] = []
        rhs = np.zeros(self.n)
        for elem in assembler.circuit.elements:
            if isinstance(elem, VoltageSource):
                rhs[:] = 0.0
                rhs[elem.branch_index()] = 1.0
            elif isinstance(elem, CurrentSource):
                a, b = elem._idx
                rhs[:] = 0.0
                if a >= 0:
                    rhs[a] = -1.0
                if b >= 0:
                    rhs[b] = 1.0
            else:
                continue
            col = self._lu.solve(rhs)
            if not np.all(np.isfinite(col)):
                raise np.linalg.LinAlgError("singular MNA matrix")
            if isinstance(elem.value, (int, float)):
                self._const += float(elem.value) * col
            else:
                self._tv.append((col, elem.value))

    def run(self, x0: np.ndarray, times: np.ndarray) -> Optional[np.ndarray]:
        """March the recurrence (semantics mirror
        :meth:`LinearMarch.run`)."""
        n_pts = len(times)
        x_all = np.empty((n_pts, self.n))
        x_all[0] = x0
        lu, e_mat, const, tv = self._lu, self._e_mat, self._const, self._tv
        x = x_all[0]
        for k in range(1, n_pts):
            if DEADLINE.active is not None and not (k & 0xFF):
                DEADLINE.active.check("sparse linear march")
            row = lu.solve(e_mat @ x)
            row += const
            if tv:
                t = times[k]
                for col, value in tv:
                    row += evaluate_source(value, t) * col
            x_all[k] = row
            x = row
        if not np.all(np.isfinite(x_all)):
            if OBS.enabled:
                OBS.metrics.counter("fastpath.sparse_march_breakdowns").inc()
            return None
        if OBS.enabled:
            m = OBS.metrics
            m.counter("fastpath.sparse_march_runs").inc()
            m.counter("fastpath.sparse_march_steps").inc(n_pts - 1)
            m.counter("mna.sparse_reuses").inc(n_pts - 1)
        return x_all
