"""Small-signal AC analysis (frequency sweeps).

Built on the same linearised ``(G, C)`` pencil as the pole/zero
extraction: at each angular frequency the complex system
``(G + jωC) x = b`` is solved and the output node's transfer recorded.
This is the ``.AC`` counterpart to :mod:`repro.spice.linearize`'s
``.PZ`` and completes the HSPICE-substitute feature set the paper's
methodology touches (frequency-domain views of the faulty/fault-free
circuits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.spice.linearize import (
    FrequencyPencil,
    _input_vector,
    _output_vector,
    small_signal_matrices,
)
from repro.spice.netlist import Circuit


@dataclass
class ACSweepResult:
    """Frequency response of one input → output path."""

    frequencies_hz: np.ndarray
    response: np.ndarray          # complex H(j 2π f)

    @property
    def magnitude(self) -> np.ndarray:
        return np.abs(self.response)

    @property
    def magnitude_db(self) -> np.ndarray:
        return 20.0 * np.log10(np.maximum(self.magnitude, 1e-300))

    @property
    def phase_deg(self) -> np.ndarray:
        return np.degrees(np.unwrap(np.angle(self.response)))

    def dc_gain(self) -> float:
        """Gain at the lowest swept frequency."""
        return float(self.magnitude[0])

    def bandwidth_3db(self) -> Optional[float]:
        """First frequency where the gain falls 3 dB below its
        low-frequency value; ``None`` if it never does in the sweep."""
        reference = self.magnitude_db[0]
        below = np.nonzero(self.magnitude_db <= reference - 3.0)[0]
        if len(below) == 0:
            return None
        idx = below[0]
        if idx == 0:
            return float(self.frequencies_hz[0])
        # log-interpolate the crossing
        f1, f2 = self.frequencies_hz[idx - 1], self.frequencies_hz[idx]
        g1, g2 = self.magnitude_db[idx - 1], self.magnitude_db[idx]
        target = reference - 3.0
        frac = (target - g1) / (g2 - g1) if g2 != g1 else 0.5
        return float(f1 * (f2 / f1) ** frac)

    def unity_gain_frequency(self) -> Optional[float]:
        """First frequency where |H| crosses 1 from above."""
        mags = self.magnitude
        for i in range(1, len(mags)):
            if mags[i - 1] >= 1.0 > mags[i]:
                f1, f2 = self.frequencies_hz[i - 1], self.frequencies_hz[i]
                g1, g2 = mags[i - 1], mags[i]
                frac = (g1 - 1.0) / (g1 - g2) if g1 != g2 else 0.5
                return float(f1 * (f2 / f1) ** frac)
        return None


def ac_sweep(circuit: Circuit, input_source: str, output_node: str,
             f_start: float = 1.0, f_stop: float = 10e6,
             points_per_decade: int = 10,
             op_vector: Optional[np.ndarray] = None) -> ACSweepResult:
    """Logarithmic AC sweep of ``input_source`` → ``output_node``.

    The circuit is linearised once at its DC operating point and the
    ``(G, C)`` pencil factorised once (generalised Schur); each
    frequency point is then a triangular back-substitution instead of
    a fresh O(n^3) dense solve.
    """
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("need 0 < f_start < f_stop")
    if points_per_decade < 1:
        raise ValueError("points_per_decade must be >= 1")
    assembler, g, c, _op = small_signal_matrices(circuit, op_vector)
    b = _input_vector(assembler, input_source)
    c_vec = _output_vector(assembler, output_node)
    n_decades = np.log10(f_stop / f_start)
    n_points = max(2, int(round(n_decades * points_per_decade)) + 1)
    freqs = np.logspace(np.log10(f_start), np.log10(f_stop), n_points)
    pencil = FrequencyPencil(g, c)
    response = pencil.transfer(b, c_vec, 2j * np.pi * freqs)
    return ACSweepResult(frequencies_hz=freqs, response=response)
