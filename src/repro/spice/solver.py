"""Newton–Raphson nonlinear solve: DC operating point with homotopy.

The solver applies three escalating strategies, mirroring what production
simulators do for hard bias points:

1. plain damped Newton from the given (or zero) initial guess,
2. gmin stepping: solve with a large gmin, then relax it decade by decade,
3. source stepping: ramp all independent sources from 0 to 100 %.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import NewtonError
from repro.obs.core import OBS, counter_value, event
from repro.obs.core import span as obs_span
from repro.resilience.deadline import DEADLINE
from repro.resilience.retry import RetryPolicy, active_policy, note_retry
from repro.spice.mna import Assembler, MNASystem, SimState
from repro.spice.netlist import Circuit
from repro.spice.validate import validate_deck

__all__ = ["NewtonError", "newton_solve", "dc_operating_point"]


#: Largest per-iteration voltage move allowed (limits Newton overshoot
#: through the square-law kinks).
MAX_STEP_V = 0.6


def _note_newton(iterations: int, failed: bool) -> None:
    """Record one Newton solve in the ambient metrics (caller checks
    ``OBS.enabled`` so the disabled path costs one branch)."""
    m = OBS.metrics
    m.counter("solver.newton_solves").inc()
    m.counter("solver.newton_iterations").inc(iterations)
    if failed:
        m.counter("solver.convergence_failures").inc()


def newton_solve(assembler: Assembler, state: SimState,
                 max_iter: int = 120, vtol: float = 1e-7,
                 x0: Optional[np.ndarray] = None) -> np.ndarray:
    """Damped Newton iteration on the MNA system for the present state.

    Returns the converged solution vector.  Raises :class:`NewtonError`
    on failure (singular matrix or iteration budget exhausted).
    """
    n = assembler.n
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=float)
    state.x = x
    if assembler.fast_path and assembler.is_linear:
        # Linear circuits: the matrix is constant for this configuration,
        # so Newton collapses to a single solve through a cached LU
        # factorization (factor once per (dt, method, gmin), then
        # back-substitute on every call).
        sys = assembler.build(state)
        try:
            x_new = (assembler.solve_cached_splu(sys) if assembler.use_sparse
                     else assembler.solve_cached_lu(sys))
        except np.linalg.LinAlgError as exc:
            raise NewtonError(f"singular MNA matrix: {exc}") from exc
        if not np.all(np.isfinite(x_new)):
            raise NewtonError("non-finite solution from linear solve")
        state.x = x_new
        state.stats["newton_solves"] += 1
        state.stats["newton_iterations"] += 1
        state.stats["linear_solves"] += 1
        if OBS.enabled:
            _note_newton(1, failed=False)
            OBS.metrics.counter("solver.linear_solves").inc()
        return x_new
    if assembler.fast_path and assembler.use_sparse:
        solve = assembler.solve_sparse  # bound: called as solve(sys) too
    else:
        solve = MNASystem.solve_fast if assembler.fast_path else MNASystem.solve
    iteration = 0
    try:
        for iteration in range(1, max_iter + 1):
            if DEADLINE.active is not None:
                DEADLINE.active.check("newton_solve")
            sys = assembler.build(state)
            try:
                x_new = solve(sys)
            except np.linalg.LinAlgError as exc:
                raise NewtonError(f"singular MNA matrix: {exc}") from exc
            if not np.all(np.isfinite(x_new)):
                raise NewtonError("non-finite solution from linear solve")
            delta = x_new - x
            max_move = float(np.max(np.abs(delta))) if n else 0.0
            if max_move > MAX_STEP_V:
                x = x + delta * (MAX_STEP_V / max_move)
            else:
                x = x_new
            state.x = x
            if max_move < vtol:
                state.stats["newton_solves"] += 1
                state.stats["newton_iterations"] += iteration
                if OBS.enabled:
                    _note_newton(iteration, failed=False)
                return x
        raise NewtonError(f"Newton failed to converge in {max_iter} "
                          f"iterations (last move {max_move:.3g} V)")
    except NewtonError as exc:
        state.stats["newton_solves"] += 1
        state.stats["newton_iterations"] += iteration
        if OBS.enabled:
            _note_newton(iteration, failed=True)
            event("solver.newton_nonconvergence", level="warning",
                  circuit=assembler.circuit.name, iterations=iteration,
                  t=state.t, dt=state.dt, gmin=state.gmin,
                  reason=str(exc))
        raise


def dc_operating_point(circuit: Circuit, t: float = 0.0,
                       x0: Optional[np.ndarray] = None,
                       max_iter: int = 120,
                       fast_path: bool = True,
                       retry_policy: Optional[RetryPolicy] = None,
                       validate: bool = True) -> Tuple[Dict[str, float], np.ndarray]:
    """Solve the DC operating point at time ``t``.

    Capacitors are open (except those carrying explicit initial
    conditions, which are weakly enforced).  Returns
    ``(node_voltages, solution_vector)``.  ``fast_path=False`` runs the
    reference stamp-everything engine (used by the equivalence tests).
    ``retry_policy`` bounds/configures the non-convergence escalation
    ladder (default: the ambient policy, see
    :mod:`repro.resilience.retry`).  ``validate=False`` skips the
    pre-flight deck checks (floating nodes, voltage-source loops).
    """
    if validate:
        validate_deck(circuit)
    assembler = Assembler(circuit, fast_path=fast_path)
    state = assembler.new_state()
    state.dt = None
    state.t = t

    with obs_span("dc_operating_point", circuit=circuit.name,
                  fast_path=fast_path) as sp:
        it0 = counter_value("solver.newton_iterations")
        x = _solve_with_homotopy(assembler, state, x0=x0, max_iter=max_iter,
                                 policy=retry_policy)
        sp.set(newton_iterations=counter_value("solver.newton_iterations") - it0)
    return assembler.voltages(x), x


def _solve_with_homotopy(assembler: Assembler, state: SimState,
                         x0: Optional[np.ndarray] = None,
                         max_iter: int = 120,
                         policy: Optional[RetryPolicy] = None) -> np.ndarray:
    """Plain Newton, then the policy's retry ladder: gmin stepping, then
    source stepping.  Each escalation emits a ``solver.retry`` event."""
    if policy is None:
        policy = active_policy()

    # Strategy 1: plain Newton.
    state.gmin = 1e-12
    state.source_scale = 1.0
    try:
        return newton_solve(assembler, state, max_iter=max_iter, x0=x0)
    except NewtonError as exc:
        first_error = exc

    # Strategy 2: gmin stepping.
    if policy.gmin_ladder:
        if OBS.enabled:
            OBS.metrics.counter("solver.homotopy_gmin_escalations").inc()
            event("solver.homotopy_escalation", strategy="gmin_stepping",
                  circuit=assembler.circuit.name)
        note_retry("gmin_stepping", circuit=assembler.circuit.name,
                   steps=len(policy.gmin_ladder))
        x = x0
        try:
            for gmin in policy.gmin_ladder:
                state.gmin = gmin
                x = newton_solve(assembler, state, max_iter=max_iter, x0=x)
            return x
        except NewtonError:
            pass

    # Strategy 3: source stepping (with a safety gmin floor).
    if policy.source_steps >= 2:
        if OBS.enabled:
            OBS.metrics.counter("solver.homotopy_source_escalations").inc()
            event("solver.homotopy_escalation", strategy="source_stepping",
                  circuit=assembler.circuit.name)
        note_retry("source_stepping", circuit=assembler.circuit.name,
                   steps=policy.source_steps)
        x = None
        state.gmin = policy.source_gmin
        try:
            for scale in np.linspace(0.0, 1.0, policy.source_steps):
                state.source_scale = float(scale)
                x = newton_solve(assembler, state, max_iter=max_iter, x0=x)
            state.source_scale = 1.0
            state.gmin = 1e-12
            return newton_solve(assembler, state, max_iter=max_iter, x0=x)
        except NewtonError as exc:
            raise NewtonError(
                f"operating point failed for circuit "
                f"{assembler.circuit.name!r}: {exc}") from exc

    # The ladder is disabled (or exhausted): surface the Newton verdict.
    raise NewtonError(
        f"operating point failed for circuit {assembler.circuit.name!r}: "
        f"{first_error}") from first_error
