"""Fixed-step transient analysis with local step subdivision.

The engine walks a uniform output grid (``dt``), solving the nonlinear
companion-model system at each point with Newton.  If a step refuses to
converge (typical at switching edges), the step is recursively halved up
to ``max_subdivisions`` levels — the output grid is unchanged, only the
internal march is refined.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.signals.waveform import Waveform
from repro.spice.elements import Capacitor
from repro.spice.mna import Assembler, SimState
from repro.spice.netlist import Circuit, GROUND
from repro.spice.solver import NewtonError, newton_solve, _solve_with_homotopy


class TransientResult:
    """Node waveforms (and source branch currents) from :func:`transient`."""

    def __init__(self, times: np.ndarray, samples: Dict[str, np.ndarray],
                 circuit_name: str = "",
                 branch_samples: Optional[Dict[str, np.ndarray]] = None
                 ) -> None:
        self.times = times
        self._samples = samples
        self._branches = branch_samples or {}
        self.circuit_name = circuit_name

    @property
    def dt(self) -> float:
        if len(self.times) < 2:
            return 0.0
        return float(self.times[1] - self.times[0])

    def nodes(self) -> List[str]:
        return list(self._samples)

    def __contains__(self, node: str) -> bool:
        return node in self._samples

    def __getitem__(self, node: str) -> Waveform:
        if node not in self._samples:
            raise KeyError(f"node {node!r} was not recorded "
                           f"(available: {sorted(self._samples)})")
        return Waveform(self._samples[node], self.dt,
                        t0=float(self.times[0]), name=node)

    def array(self, node: str) -> np.ndarray:
        return self._samples[node]

    def final(self, node: str) -> float:
        return float(self._samples[node][-1])

    def branches(self) -> List[str]:
        return list(self._branches)

    def branch_current(self, source_name: str) -> Waveform:
        """Current through a recorded voltage source (positive into its
        + terminal) — the dynamic-Idd observation point."""
        if source_name not in self._branches:
            raise KeyError(
                f"branch current for {source_name!r} was not recorded "
                f"(available: {sorted(self._branches)})")
        return Waveform(self._branches[source_name], self.dt,
                        t0=float(self.times[0]), name=f"I({source_name})")


def transient(circuit: Circuit, t_stop: float, dt: float,
              record: Optional[Sequence[str]] = None,
              record_branches: Optional[Sequence[str]] = None,
              method: str = "be",
              x0: Optional[np.ndarray] = None,
              uic: bool = False,
              max_newton: int = 60,
              max_subdivisions: int = 8) -> TransientResult:
    """Run a transient analysis from t = 0 to ``t_stop``.

    Parameters
    ----------
    circuit:
        The netlist.  Time-varying independent sources (callables or
        Waveforms) are evaluated along the march.
    t_stop, dt:
        Simulation span and output timestep.
    record:
        Node names to record; default all non-ground nodes.
    record_branches:
        Names of voltage sources whose branch currents to record (the
        MNA solves for them anyway; this exposes them, e.g. the supply
        current for dynamic-Idd testing).
    method:
        ``"be"`` (backward Euler, default, robust for switching circuits)
        or ``"trap"`` (trapezoidal, second order).
    x0:
        Initial MNA solution vector; when omitted the DC operating point
        at t = 0 seeds the march (unless ``uic``).
    uic:
        "Use initial conditions": skip the OP solve and start from zero /
        capacitor ``ic`` values, as SPICE's ``UIC`` does.
    max_newton:
        Newton iteration budget per solve.
    max_subdivisions:
        Levels of local step halving tried on Newton failure.
    """
    if t_stop <= 0:
        raise ValueError("t_stop must be positive")
    if dt <= 0 or dt > t_stop:
        raise ValueError("dt must lie in (0, t_stop]")
    if method not in ("be", "trap"):
        raise ValueError(f"unknown method {method!r}")

    assembler = Assembler(circuit)
    state = assembler.new_state()
    state.method = method
    capacitors = circuit.elements_of_type(Capacitor)

    # --- initial point ------------------------------------------------
    if x0 is not None:
        x = np.array(x0, dtype=float)
    elif uic:
        x = np.zeros(assembler.n)
        # Seed capacitor initial conditions as node-voltage guesses.
        for cap in capacitors:
            if cap.ic is not None:
                a, b = cap._idx
                if a >= 0 and b < 0:
                    x[a] = cap.ic
    else:
        state.dt = None
        state.t = 0.0
        x = _solve_with_homotopy(assembler, state, max_iter=max_newton * 2)

    n_steps = int(round(t_stop / dt))
    record_nodes = list(record) if record is not None else assembler.node_names
    for node in record_nodes:
        if node != GROUND and node not in assembler.index:
            raise KeyError(f"cannot record unknown node {node!r}")
    branch_indices: Dict[str, int] = {}
    for name in (record_branches or ()):
        elem = circuit.element(name)
        if getattr(elem, "n_branches", 0) < 1:
            raise TypeError(f"{name!r} carries no branch current "
                            f"(not a voltage source)")
        branch_indices[name] = elem.branch_index()
    times = dt * np.arange(n_steps + 1)
    traces = {node: np.empty(n_steps + 1) for node in record_nodes}
    branch_traces = {name: np.empty(n_steps + 1) for name in branch_indices}

    def capture(k: int, vec: np.ndarray) -> None:
        for node in record_nodes:
            idx = assembler.index.get(node, -1)
            traces[node][k] = 0.0 if idx < 0 else vec[idx]
        for name, idx in branch_indices.items():
            branch_traces[name][k] = vec[idx]

    capture(0, x)

    # --- march ----------------------------------------------------------
    state.gmin = 1e-12
    state.source_scale = 1.0
    for k in range(1, n_steps + 1):
        # Trapezoidal integration needs a consistent initial capacitor
        # current; a backward-Euler start-up step provides it even when
        # sources are discontinuous at t = 0 (the SPICE convention).
        state.method = "be" if (method == "trap" and k == 1) else method
        t_target = float(times[k])
        x = _advance(assembler, state, capacitors, x,
                     t_from=t_target - dt, t_to=t_target,
                     max_newton=max_newton, depth=max_subdivisions)
        capture(k, x)

    return TransientResult(times, traces, circuit_name=circuit.name,
                           branch_samples=branch_traces)


def _advance(assembler: Assembler, state: SimState,
             capacitors: Iterable[Capacitor], x: np.ndarray,
             t_from: float, t_to: float, max_newton: int,
             depth: int) -> np.ndarray:
    """Advance the solution from ``t_from`` to ``t_to``; subdivide on
    Newton failure."""
    step = t_to - t_from
    state.dt = step
    state.t = t_to
    state.x_prev = x
    try:
        x_new = newton_solve(assembler, state, max_iter=max_newton, x0=x)
    except NewtonError:
        if depth <= 0:
            raise
        aux_backup = dict(state.aux)
        t_mid = t_from + step / 2.0
        try:
            x_mid = _advance(assembler, state, capacitors, x, t_from, t_mid,
                             max_newton, depth - 1)
            return _advance(assembler, state, capacitors, x_mid, t_mid, t_to,
                            max_newton, depth - 1)
        except NewtonError:
            state.aux = aux_backup
            raise
    for cap in capacitors:
        cap.record_state(state, x_new)
    return x_new
