"""Fixed-step transient analysis with local step subdivision.

The engine walks a uniform output grid (``dt``), solving the nonlinear
companion-model system at each point with Newton.  If a step refuses to
converge (typical at switching edges), the step is recursively halved up
to ``max_subdivisions`` levels — the output grid is unchanged, only the
internal march is refined.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.obs.core import OBS, counter_value, event
from repro.resilience.deadline import DEADLINE
from repro.resilience.retry import RetryPolicy, active_policy, note_retry
from repro.signals.waveform import Waveform
from repro.spice.elements import Capacitor, Inductor
from repro.spice.fastpath import (LinearMarch, SparseLinearMarch,
                                  linear_march_supported)
from repro.spice.mna import Assembler, SimState
from repro.spice.netlist import Circuit, GROUND
from repro.spice.solver import NewtonError, newton_solve, _solve_with_homotopy
from repro.spice.validate import validate_deck


class GridMismatchWarning(UserWarning):
    """``t_stop`` is not an integer multiple of ``dt``: the final sample
    lands on ``round(t_stop / dt) * dt``, not on ``t_stop``."""


class TransientResult:
    """Node waveforms (and source branch currents) from :func:`transient`."""

    def __init__(self, times: np.ndarray, samples: Dict[str, np.ndarray],
                 circuit_name: str = "",
                 branch_samples: Optional[Dict[str, np.ndarray]] = None
                 ) -> None:
        self.times = times
        self._samples = samples
        self._branches = branch_samples or {}
        self.circuit_name = circuit_name
        #: trace span of the run that produced this result (set when an
        #: observation scope was active; part of the RunResult protocol).
        self.trace: Optional[Any] = None
        #: deterministic solver accounting for the run — engine route,
        #: Newton iteration counts, subdivisions.  Always populated
        #: (independent of the observability switch) so the verification
        #: harness can report which code path produced each waveform.
        self.stats: Dict[str, Any] = {}

    @property
    def dt(self) -> float:
        if len(self.times) < 2:
            return 0.0
        return float(self.times[1] - self.times[0])

    def nodes(self) -> List[str]:
        return list(self._samples)

    def __contains__(self, node: str) -> bool:
        return node in self._samples

    def __getitem__(self, node: str) -> Waveform:
        if node not in self._samples:
            raise KeyError(f"node {node!r} was not recorded "
                           f"(available: {sorted(self._samples)})")
        return Waveform(self._samples[node], self.dt,
                        t0=float(self.times[0]), name=node)

    def array(self, node: str) -> np.ndarray:
        return self._samples[node]

    def final(self, node: str) -> float:
        return float(self._samples[node][-1])

    def branches(self) -> List[str]:
        return list(self._branches)

    def branch_current(self, source_name: str) -> Waveform:
        """Current through a recorded voltage source (positive into its
        + terminal) — the dynamic-Idd observation point."""
        if source_name not in self._branches:
            raise KeyError(
                f"branch current for {source_name!r} was not recorded "
                f"(available: {sorted(self._branches)})")
        return Waveform(self._branches[source_name], self.dt,
                        t0=float(self.times[0]), name=f"I({source_name})")

    # -- RunResult protocol --------------------------------------------
    def summary(self) -> str:
        span = (float(self.times[-1]) - float(self.times[0])
                if len(self.times) else 0.0)
        return (f"transient {self.circuit_name or '<circuit>'}: "
                f"{max(len(self.times) - 1, 0)} steps of {self.dt:g} s "
                f"({span:g} s), {len(self._samples)} nodes, "
                f"{len(self._branches)} branch currents")

    def to_dict(self, include_samples: bool = False) -> Dict[str, Any]:
        """Machine-readable shape.  Waveform arrays are large, so by
        default only the final value per node/branch is included; pass
        ``include_samples=True`` for the full arrays (as lists)."""
        out: Dict[str, Any] = {
            "kind": "transient",
            "circuit": self.circuit_name,
            "n_steps": max(len(self.times) - 1, 0),
            "dt_s": self.dt,
            "nodes": self.nodes(),
            "branches": self.branches(),
            "final": {node: self.final(node) for node in self._samples},
        }
        if include_samples:
            out["times"] = [float(t) for t in self.times]
            out["samples"] = {n: [float(v) for v in a]
                              for n, a in self._samples.items()}
            out["branch_samples"] = {n: [float(v) for v in a]
                                     for n, a in self._branches.items()}
        if self.stats:
            out["stats"] = dict(self.stats)
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        return out

    def report(self) -> str:
        """Terminal report: summary plus the run's span profile (when
        the run executed under an observation scope)."""
        from repro.obs.report import result_report
        return result_report(self)


#: counters whose per-run deltas are attached to the ``transient`` span
_SPAN_COUNTERS = ("solver.newton_iterations", "mna.lu_factorizations",
                  "mna.lu_reuses", "mna.static_reuses",
                  "transient.subdivisions")

#: subdivision count within one march at which a single
#: ``transient.subdivision_storm`` warning event is emitted.
_SUBDIVISION_STORM = 16


def transient(circuit: Circuit, t_stop: float, dt: float,
              record: Optional[Sequence[str]] = None,
              record_branches: Optional[Sequence[str]] = None,
              method: str = "be",
              x0: Optional[np.ndarray] = None,
              uic: bool = False,
              max_newton: int = 60,
              max_subdivisions: Optional[int] = None,
              fast_path: bool = True,
              retry_policy: Optional[RetryPolicy] = None,
              validate: bool = True) -> TransientResult:
    """Run a transient analysis from t = 0 to ``t_stop``.

    Parameters
    ----------
    circuit:
        The netlist.  Time-varying independent sources (callables or
        Waveforms) are evaluated along the march.
    t_stop, dt:
        Simulation span and output timestep.
    record:
        Node names to record; default all non-ground nodes.
    record_branches:
        Names of voltage sources whose branch currents to record (the
        MNA solves for them anyway; this exposes them, e.g. the supply
        current for dynamic-Idd testing).
    method:
        ``"be"`` (backward Euler, default, robust for switching circuits)
        or ``"trap"`` (trapezoidal, second order).
    x0:
        Initial MNA solution vector; when omitted the DC operating point
        at t = 0 seeds the march (unless ``uic``).
    uic:
        "Use initial conditions": skip the OP solve and start from zero /
        capacitor ``ic`` values, as SPICE's ``UIC`` does.
    max_newton:
        Newton iteration budget per solve.
    max_subdivisions:
        Levels of local step halving tried on Newton failure.  Default:
        the retry policy's ``max_timestep_halvings`` (historically 8).
    fast_path:
        Enable the partitioned/cached engine and, for fully linear
        backward-Euler circuits, the one-factorization linear march.
        ``False`` runs the reference stamp-everything engine (the
        equivalence tests compare the two).
    retry_policy:
        Escalation ladder for non-convergence recovery (default: the
        ambient policy; see :mod:`repro.resilience.retry`).
    validate:
        Run pre-flight deck validation (floating nodes, voltage-source
        loops) before simulating; raises
        :class:`~repro.errors.DeckError` naming the offender.
    """
    if t_stop <= 0:
        raise ValueError("t_stop must be positive")
    if dt <= 0 or dt > t_stop:
        raise ValueError("dt must lie in (0, t_stop]")
    if method not in ("be", "trap"):
        raise ValueError(f"unknown method {method!r}")
    if validate:
        validate_deck(circuit)
    policy = retry_policy if retry_policy is not None else active_policy()
    if max_subdivisions is None:
        max_subdivisions = policy.max_timestep_halvings

    if not OBS.enabled:
        return _transient_impl(circuit, t_stop, dt, record, record_branches,
                               method, x0, uic, max_newton, max_subdivisions,
                               fast_path)

    before = {name: counter_value(name) for name in _SPAN_COUNTERS}
    march0 = counter_value("fastpath.linear_march_runs")
    sparse0 = counter_value("fastpath.sparse_march_runs")
    with OBS.tracer.span("transient", circuit=circuit.name, t_stop=t_stop,
                         dt=dt, method=method, fast_path=fast_path) as sp:
        result = _transient_impl(circuit, t_stop, dt, record, record_branches,
                                 method, x0, uic, max_newton,
                                 max_subdivisions, fast_path)
        deltas = {name.split(".", 1)[1]: counter_value(name) - before[name]
                  for name in _SPAN_COUNTERS}
        if counter_value("fastpath.linear_march_runs") > march0:
            engine = "linear_march"
        elif counter_value("fastpath.sparse_march_runs") > sparse0:
            engine = "sparse_linear_march"
        else:
            engine = "newton"
        sp.set(n_steps=max(len(result.times) - 1, 0), engine=engine, **deltas)
        result.trace = sp
    m = OBS.metrics
    m.counter("transient.runs").inc()
    m.counter("transient.steps").inc(max(len(result.times) - 1, 0))
    return result


def _transient_impl(circuit: Circuit, t_stop: float, dt: float,
                    record: Optional[Sequence[str]],
                    record_branches: Optional[Sequence[str]],
                    method: str,
                    x0: Optional[np.ndarray],
                    uic: bool,
                    max_newton: int,
                    max_subdivisions: int,
                    fast_path: bool) -> TransientResult:
    """The uninstrumented march (see :func:`transient` for semantics)."""
    assembler = Assembler(circuit, fast_path=fast_path)
    state = assembler.new_state()
    state.method = method
    capacitors = circuit.elements_of_type(Capacitor)

    # --- initial point ------------------------------------------------
    if x0 is not None:
        x = np.array(x0, dtype=float)
    elif uic:
        x = np.zeros(assembler.n)
        # Seed capacitor initial conditions as node-voltage guesses.
        for cap in capacitors:
            if cap.ic is not None:
                a, b = cap._idx
                if a >= 0 and b < 0:
                    x[a] = cap.ic
        # Inductor initial currents seed the branch unknowns directly.
        for ind in circuit.elements_of_type(Inductor):
            if ind.ic is not None:
                x[ind.branch_index()] = ind.ic
    else:
        state.dt = None
        state.t = 0.0
        x = _solve_with_homotopy(assembler, state, max_iter=max_newton * 2)

    n_steps = int(round(t_stop / dt))
    if abs(n_steps * dt - t_stop) > 1e-9 * max(abs(t_stop), dt):
        warnings.warn(
            f"t_stop={t_stop:g} is not an integer multiple of dt={dt:g}; "
            f"the march covers {n_steps} steps ending at t={n_steps * dt:g}, "
            f"not t_stop", GridMismatchWarning, stacklevel=3)
        if OBS.enabled:
            event("transient.grid_mismatch", level="warning",
                  circuit=circuit.name, t_stop=t_stop, dt=dt,
                  t_end=n_steps * dt)
    record_nodes = list(record) if record is not None else assembler.node_names
    for node in record_nodes:
        if node != GROUND and node not in assembler.index:
            raise KeyError(f"cannot record unknown node {node!r}")
    branch_indices: Dict[str, int] = {}
    for name in (record_branches or ()):
        elem = circuit.element(name)
        if getattr(elem, "n_branches", 0) < 1:
            raise TypeError(f"{name!r} carries no branch current "
                            f"(not a voltage source)")
        branch_indices[name] = elem.branch_index()
    times = dt * np.arange(n_steps + 1)

    # Vectorised capture: node/branch index arrays are computed once and
    # every sample is a fancy-indexed gather (ground indices, -1, are
    # redirected to a zero slot appended to the solution vector).
    rec_raw = np.array([assembler.index.get(node, -1) for node in record_nodes],
                       dtype=np.intp)
    rec_idx = np.where(rec_raw < 0, assembler.n, rec_raw)
    branch_names = list(branch_indices)
    branch_idx = np.array([branch_indices[name] for name in branch_names],
                          dtype=np.intp)
    trace_mat = np.empty((len(record_nodes), n_steps + 1))
    branch_mat = np.empty((len(branch_names), n_steps + 1))
    ext = np.empty(assembler.n + 1)
    ext[assembler.n] = 0.0

    def capture(k: int, vec: np.ndarray) -> None:
        ext[:assembler.n] = vec
        trace_mat[:, k] = ext[rec_idx]
        if len(branch_names):
            branch_mat[:, k] = vec[branch_idx]

    capture(0, x)

    # --- march ----------------------------------------------------------
    state.gmin = 1e-12
    state.source_scale = 1.0

    # Fully linear circuit + backward Euler: one factorisation, then a
    # matrix-vector recurrence over the whole grid.
    if fast_path and linear_march_supported(circuit, method):
        x_all = _run_linear_march(assembler, x, times)
        if x_all is not None:
            x_ext = np.hstack([x_all, np.zeros((n_steps + 1, 1))])
            trace_mat[:, :] = x_ext[:, rec_idx].T
            if len(branch_names):
                branch_mat[:, :] = x_all[:, branch_idx].T
            traces = {node: trace_mat[i] for i, node in enumerate(record_nodes)}
            branch_traces = {name: branch_mat[i]
                             for i, name in enumerate(branch_names)}
            result = TransientResult(times, traces, circuit_name=circuit.name,
                                     branch_samples=branch_traces)
            engine = ("sparse_linear_march" if assembler.use_sparse
                      else "linear_march")
            result.stats = dict(state.stats, engine=engine,
                                n_steps=n_steps, method=method,
                                fast_path=fast_path)
            return result

    for k in range(1, n_steps + 1):
        if DEADLINE.active is not None:
            DEADLINE.active.check("transient march")
        # Trapezoidal integration needs a consistent initial capacitor
        # current; a backward-Euler start-up step provides it even when
        # sources are discontinuous at t = 0 (the SPICE convention).
        state.method = "be" if (method == "trap" and k == 1) else method
        t_target = float(times[k])
        x = _advance(assembler, state, capacitors, x,
                     t_from=t_target - dt, t_to=t_target,
                     max_newton=max_newton, depth=max_subdivisions)
        capture(k, x)

    traces = {node: trace_mat[i] for i, node in enumerate(record_nodes)}
    branch_traces = {name: branch_mat[i] for i, name in enumerate(branch_names)}
    result = TransientResult(times, traces, circuit_name=circuit.name,
                             branch_samples=branch_traces)
    result.stats = dict(state.stats, engine="newton", n_steps=n_steps,
                        method=method, fast_path=fast_path)
    return result


def _run_linear_march(assembler: Assembler, x0: np.ndarray,
                      times: np.ndarray) -> Optional[np.ndarray]:
    """Try the linear-march fast path; ``None`` means fall back.

    Large systems (``assembler.use_sparse``) march through the
    SuperLU-factorised :class:`~repro.spice.fastpath.SparseLinearMarch`
    instead of the dense ``G^-1`` recurrence.
    """
    if len(times) < 2:
        return None
    march_cls = SparseLinearMarch if assembler.use_sparse else LinearMarch
    try:
        march = march_cls(assembler, dt=float(times[1] - times[0]),
                          gmin=1e-12)
    except np.linalg.LinAlgError:
        return None
    return march.run(x0, times)


def _advance(assembler: Assembler, state: SimState,
             capacitors: Iterable[Capacitor], x: np.ndarray,
             t_from: float, t_to: float, max_newton: int,
             depth: int) -> np.ndarray:
    """Advance the solution from ``t_from`` to ``t_to``; subdivide on
    Newton failure."""
    step = t_to - t_from
    state.dt = step
    state.t = t_to
    state.x_prev = x
    try:
        x_new = newton_solve(assembler, state, max_iter=max_newton, x0=x)
    except NewtonError:
        if depth <= 0:
            raise
        state.stats["subdivisions"] += 1
        note_retry("timestep_halving", t_from=t_from, t_to=t_to,
                   depth_remaining=depth)
        if OBS.enabled:
            OBS.metrics.counter("transient.subdivisions").inc()
            event("transient.subdivision",
                  level="info" if depth > 2 else "warning",
                  t_from=t_from, t_to=t_to, depth_remaining=depth)
            # A storm — many halvings inside one march — usually means
            # dt is far too coarse for the circuit's fastest edge; flag
            # it once, at the threshold crossing.
            if state.stats["subdivisions"] == _SUBDIVISION_STORM:
                event("transient.subdivision_storm", level="warning",
                      subdivisions=_SUBDIVISION_STORM, t=t_to)
        aux_backup = dict(state.aux)
        t_mid = t_from + step / 2.0
        try:
            x_mid = _advance(assembler, state, capacitors, x, t_from, t_mid,
                             max_newton, depth - 1)
            return _advance(assembler, state, capacitors, x_mid, t_mid, t_to,
                            max_newton, depth - 1)
        except NewtonError:
            state.aux = aux_backup
            raise
    for cap in capacitors:
        cap.record_state(state, x_new)
    return x_new
