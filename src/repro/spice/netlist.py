"""Circuit container and node bookkeeping for the MNA engine."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

GROUND = "0"

SourceValue = Union[float, int, "object"]  # float | callable(t) | Waveform


class Circuit:
    """A netlist: named elements connected between named nodes.

    Nodes are created implicitly as elements reference them.  The ground
    node is ``"0"`` (``"gnd"`` is accepted as an alias and normalised).

    The class offers builder methods (``resistor``, ``nmos``, ...) so
    netlists read like a SPICE deck::

        ckt = Circuit("divider")
        ckt.vsource("VIN", "in", "0", 5.0)
        ckt.resistor("R1", "in", "mid", 1e3)
        ckt.resistor("R2", "mid", "0", 1e3)
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.elements: List["object"] = []
        self._by_name: Dict[str, "object"] = {}

    # ------------------------------------------------------------------
    # Element management
    # ------------------------------------------------------------------
    @staticmethod
    def canonical_node(node: str) -> str:
        node = str(node)
        return GROUND if node.lower() in ("0", "gnd", "ground", "vss!") else node

    def add(self, element) -> "object":
        """Add an element object (already constructed)."""
        if element.name in self._by_name:
            raise ValueError(f"duplicate element name {element.name!r}")
        element.nodes = tuple(self.canonical_node(n) for n in element.nodes)
        self.elements.append(element)
        self._by_name[element.name] = element
        return element

    def element(self, name: str):
        """Look up an element by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no element named {name!r} in circuit {self.name!r}")

    def remove(self, name: str) -> None:
        """Remove an element by name."""
        elem = self.element(name)
        self.elements.remove(elem)
        del self._by_name[name]

    def has_element(self, name: str) -> bool:
        return name in self._by_name

    def elements_of_type(self, cls: Type) -> List:
        return [e for e in self.elements if isinstance(e, cls)]

    # ------------------------------------------------------------------
    # Node bookkeeping
    # ------------------------------------------------------------------
    def nodes(self) -> List[str]:
        """All non-ground nodes in first-reference order."""
        seen: Dict[str, None] = {}
        for elem in self.elements:
            for node in elem.nodes:
                if node != GROUND and node not in seen:
                    seen[node] = None
        return list(seen)

    def node_index(self) -> Dict[str, int]:
        """Map node name → MNA row index (ground maps to -1)."""
        index = {GROUND: -1}
        for i, node in enumerate(self.nodes()):
            index[node] = i
        return index

    def branch_elements(self) -> List:
        """Elements that introduce branch-current unknowns, in order."""
        return [e for e in self.elements if getattr(e, "n_branches", 0) > 0]

    def system_size(self) -> int:
        """Number of MNA unknowns: node voltages + branch currents."""
        return len(self.nodes()) + sum(e.n_branches for e in self.branch_elements())

    # ------------------------------------------------------------------
    # Builder helpers
    # ------------------------------------------------------------------
    def resistor(self, name: str, a: str, b: str, resistance: float):
        from repro.spice.elements import Resistor
        return self.add(Resistor(name, a, b, resistance))

    def capacitor(self, name: str, a: str, b: str, capacitance: float,
                  ic: Optional[float] = None):
        from repro.spice.elements import Capacitor
        return self.add(Capacitor(name, a, b, capacitance, ic=ic))

    def inductor(self, name: str, a: str, b: str, inductance: float,
                 ic: Optional[float] = None):
        from repro.spice.elements import Inductor
        return self.add(Inductor(name, a, b, inductance, ic=ic))

    def vsource(self, name: str, plus: str, minus: str, value: SourceValue):
        from repro.spice.elements import VoltageSource
        return self.add(VoltageSource(name, plus, minus, value))

    def isource(self, name: str, frm: str, to: str, value: SourceValue):
        from repro.spice.elements import CurrentSource
        return self.add(CurrentSource(name, frm, to, value))

    def vcvs(self, name: str, out_p: str, out_m: str, in_p: str, in_m: str,
             gain: float):
        from repro.spice.elements import VCVS
        return self.add(VCVS(name, out_p, out_m, in_p, in_m, gain))

    def vccs(self, name: str, out_p: str, out_m: str, in_p: str, in_m: str,
             transconductance: float):
        from repro.spice.elements import VCCS
        return self.add(VCCS(name, out_p, out_m, in_p, in_m, transconductance))

    def switch(self, name: str, a: str, b: str, ctrl_p: str, ctrl_m: str,
               v_on: float = 2.5, r_on: float = 100.0, r_off: float = 1e9):
        from repro.spice.elements import Switch
        return self.add(Switch(name, a, b, ctrl_p, ctrl_m, v_on, r_on, r_off))

    def nmos(self, name: str, d: str, g: str, s: str, w: float = 10e-6,
             l: float = 5e-6, params=None):
        from repro.spice.mosfet import MOSFET, NMOS_5U
        return self.add(MOSFET(name, d, g, s, params or NMOS_5U, w=w, l=l))

    def pmos(self, name: str, d: str, g: str, s: str, w: float = 20e-6,
             l: float = 5e-6, params=None):
        from repro.spice.mosfet import MOSFET, PMOS_5U
        return self.add(MOSFET(name, d, g, s, params or PMOS_5U, w=w, l=l))

    # ------------------------------------------------------------------
    def copy(self) -> "Circuit":
        """Deep-enough copy: new container, cloned elements."""
        dup = Circuit(self.name)
        for elem in self.elements:
            dup.add(elem.clone())
        return dup

    def merge(self, other: "Circuit", prefix: str = "",
              node_map: Optional[Dict[str, str]] = None) -> None:
        """Splice another circuit into this one.

        ``node_map`` renames the sub-circuit's nodes (its ports) onto this
        circuit's nodes; unmapped non-ground nodes are prefixed to stay
        private.  Element names are prefixed to avoid collisions.
        """
        node_map = dict(node_map or {})
        for elem in other.elements:
            clone = elem.clone()
            clone.name = prefix + clone.name
            mapped = []
            for node in clone.nodes:
                if node == GROUND:
                    mapped.append(node)
                elif node in node_map:
                    mapped.append(node_map[node])
                else:
                    mapped.append(prefix + node)
            clone.nodes = tuple(mapped)
            self.add(clone)

    def transistor_count(self) -> int:
        from repro.spice.mosfet import MOSFET
        return len(self.elements_of_type(MOSFET))

    def summary(self) -> str:
        """One-line-per-element description, SPICE-deck flavoured."""
        lines = [f"* circuit {self.name}: {len(self.elements)} elements, "
                 f"{len(self.nodes())} nodes"]
        for elem in self.elements:
            lines.append(elem.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Circuit({self.name!r}, {len(self.elements)} elements, "
                f"{len(self.nodes())} nodes)")
