"""Linear and quasi-linear MNA elements.

Every element knows how to stamp itself into an :class:`~repro.spice.mna.MNASystem`
for the present analysis (DC when ``state.dt is None``, transient
otherwise) and into the small-signal ``(G, C)`` pencil via ``stamp_ac``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.signals.waveform import Waveform

SourceValue = Union[float, int, Callable[[float], float], Waveform]


def evaluate_source(value: SourceValue, t: float) -> float:
    """Resolve a source value: constant, callable of time, or Waveform."""
    if isinstance(value, Waveform):
        return value.value_at(t)
    if callable(value):
        return float(value(t))
    return float(value)


#: Stamp-partition classes used by the fast-path assembler.
#: ``static``  — the whole stamp is constant for a fixed (dt, method)
#:               configuration and touches only G.
#: ``split``   — a constant G part (``stamp_static``) plus a per-step /
#:               per-iteration part (``stamp_dynamic``).
#: ``dynamic`` — everything is restamped each build (safe default).
#: ``nonlinear`` — the G stamp depends on the present Newton estimate
#:               ``state.x``; restamped every Newton iteration.
PARTITION_STATIC = "static"
PARTITION_SPLIT = "split"
PARTITION_DYNAMIC = "dynamic"
PARTITION_NONLINEAR = "nonlinear"


class Element:
    """Base class for netlist elements."""

    #: number of extra MNA unknowns (branch currents) the element adds
    n_branches = 0

    #: stamp-partition class; subclasses that override :meth:`stamp` with
    #: state-dependent behaviour MUST downgrade this to ``dynamic`` or
    #: ``nonlinear`` — the fast-path assembler trusts it.
    partition = PARTITION_DYNAMIC

    def __init__(self, name: str, *nodes: str) -> None:
        self.name = name
        self.nodes: Tuple[str, ...] = tuple(str(n) for n in nodes)
        self._idx: Tuple[int, ...] = ()
        self._branch = -1

    def bind(self, index: Dict[str, int], branch_offset: int = -1) -> None:
        """Cache MNA indices for this element's nodes (and branch)."""
        self._idx = tuple(index[n] for n in self.nodes)
        if self.n_branches:
            self._branch = branch_offset

    def branch_index(self) -> int:
        """MNA index of this element's branch current (−1 when the
        element carries none)."""
        return self._branch

    def stamp(self, sys, state) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def stamp_static(self, sys, state) -> None:
        """Stamp the contributions that are constant for a fixed
        ``(dt, method)`` configuration (``split`` elements only)."""

    def stamp_dynamic(self, sys, state) -> None:
        """Stamp the per-step contributions (``split`` elements only).
        ``stamp_static`` + ``stamp_dynamic`` must equal :meth:`stamp`."""

    def stamp_ac(self, g: np.ndarray, c: np.ndarray, op: np.ndarray) -> None:
        """Stamp small-signal conductance into ``g`` and capacitance into
        ``c`` at the operating point ``op`` (an MNA solution vector).

        The default treats the element as having no small-signal
        contribution; concrete elements override as needed.
        """

    def clone(self) -> "Element":
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.name} {' '.join(self.nodes)}"

    def _v(self, op: np.ndarray, idx: int) -> float:
        return 0.0 if idx < 0 else float(op[idx])


class Resistor(Element):
    """Two-terminal linear resistor."""

    partition = PARTITION_STATIC

    def __init__(self, name: str, a: str, b: str, resistance: float) -> None:
        if resistance <= 0:
            raise ValueError(f"{name}: resistance must be positive")
        super().__init__(name, a, b)
        self.resistance = float(resistance)

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def stamp(self, sys, state) -> None:
        a, b = self._idx
        sys.add_conductance(a, b, self.conductance)

    def stamp_ac(self, g, c, op) -> None:
        a, b = self._idx
        _stamp_cond(g, a, b, self.conductance)

    def clone(self) -> "Resistor":
        return Resistor(self.name, *self.nodes, self.resistance)

    def describe(self) -> str:
        return f"R {self.name} {self.nodes[0]} {self.nodes[1]} {self.resistance:g}"


class Capacitor(Element):
    """Two-terminal linear capacitor with companion-model integration."""

    partition = PARTITION_SPLIT

    def __init__(self, name: str, a: str, b: str, capacitance: float,
                 ic: Optional[float] = None) -> None:
        if capacitance <= 0:
            raise ValueError(f"{name}: capacitance must be positive")
        super().__init__(name, a, b)
        self.capacitance = float(capacitance)
        self.ic = ic

    def stamp(self, sys, state) -> None:
        a, b = self._idx
        if state.dt is None:
            # DC: open circuit.  The ``ic`` value is honoured only by a
            # ``uic`` transient start (SPICE semantics) — enforcing it
            # here would corrupt every operating point the capacitor
            # touches.
            return
        v_prev = state.voltage_prev(a) - state.voltage_prev(b)
        if state.method == "trap":
            geq = 2.0 * self.capacitance / state.dt
            i_prev = state.aux.get(self.name, 0.0)
            ieq = -geq * v_prev - i_prev
        else:  # backward Euler
            geq = self.capacitance / state.dt
            ieq = -geq * v_prev
        sys.add_conductance(a, b, geq)
        # companion current source: i = geq*v + ieq flowing a -> b
        sys.add_current(a, b, ieq)

    def stamp_static(self, sys, state) -> None:
        if state.dt is None:
            return
        a, b = self._idx
        if state.method == "trap":
            geq = 2.0 * self.capacitance / state.dt
        else:
            geq = self.capacitance / state.dt
        sys.add_conductance(a, b, geq)

    def stamp_dynamic(self, sys, state) -> None:
        if state.dt is None:
            return
        a, b = self._idx
        v_prev = state.voltage_prev(a) - state.voltage_prev(b)
        if state.method == "trap":
            geq = 2.0 * self.capacitance / state.dt
            ieq = -geq * v_prev - state.aux.get(self.name, 0.0)
        else:
            ieq = -(self.capacitance / state.dt) * v_prev
        sys.add_current(a, b, ieq)

    def record_state(self, state, x: np.ndarray) -> None:
        """Update the branch-current memory after a completed step.

        The stored current feeds the next trapezoidal companion model;
        it is maintained under backward Euler too so a trapezoidal march
        can be seeded by a BE start-up step.
        """
        if state.dt is None:
            return
        a, b = self._idx
        v_now = (0.0 if a < 0 else x[a]) - (0.0 if b < 0 else x[b])
        v_prev = state.voltage_prev(a) - state.voltage_prev(b)
        if state.method == "trap":
            geq = 2.0 * self.capacitance / state.dt
            i_prev = state.aux.get(self.name, 0.0)
            state.aux[self.name] = geq * (v_now - v_prev) - i_prev
        else:
            state.aux[self.name] = self.capacitance / state.dt * (v_now - v_prev)

    def stamp_ac(self, g, c, op) -> None:
        a, b = self._idx
        _stamp_cond(c, a, b, self.capacitance)

    def clone(self) -> "Capacitor":
        return Capacitor(self.name, *self.nodes, self.capacitance, ic=self.ic)

    def describe(self) -> str:
        return f"C {self.name} {self.nodes[0]} {self.nodes[1]} {self.capacitance:g}"


class Inductor(Element):
    """Two-terminal linear inductor (adds one branch-current unknown).

    The branch row enforces ``v(a) - v(b) = L dI/dt`` through the usual
    companion models: a DC analysis sees a short circuit, backward Euler
    sees ``v_k = (L/dt)(I_k - I_prev)`` and trapezoidal sees
    ``v_k + v_prev = (2L/dt)(I_k - I_prev)``.  The previous branch
    current is read straight from ``state.x_prev`` — no aux memory is
    needed because the current is an MNA unknown.
    """

    n_branches = 1
    partition = PARTITION_SPLIT

    def __init__(self, name: str, a: str, b: str, inductance: float,
                 ic: Optional[float] = None) -> None:
        if inductance <= 0:
            raise ValueError(f"{name}: inductance must be positive")
        super().__init__(name, a, b)
        self.inductance = float(inductance)
        self.ic = ic

    def _geq(self, state) -> float:
        """Companion impedance term on the branch diagonal."""
        if state.dt is None:
            return 0.0
        if state.method == "trap":
            return 2.0 * self.inductance / state.dt
        return self.inductance / state.dt

    def stamp(self, sys, state) -> None:
        self.stamp_static(sys, state)
        self.stamp_dynamic(sys, state)

    def stamp_static(self, sys, state) -> None:
        a, b = self._idx
        j = self._branch
        sys.add_g(a, j, 1.0)
        sys.add_g(b, j, -1.0)
        sys.add_g(j, a, 1.0)
        sys.add_g(j, b, -1.0)
        geq = self._geq(state)
        if geq:
            sys.add_g(j, j, -geq)

    def stamp_dynamic(self, sys, state) -> None:
        if state.dt is None:
            return
        j = self._branch
        i_prev = state.voltage_prev(j)
        rhs = -self._geq(state) * i_prev
        if state.method == "trap":
            a, b = self._idx
            rhs -= state.voltage_prev(a) - state.voltage_prev(b)
        sys.add_b(j, rhs)

    def stamp_ac(self, g, c, op) -> None:
        a, b = self._idx
        j = self._branch
        for (i, k, val) in ((a, j, 1.0), (b, j, -1.0), (j, a, 1.0), (j, b, -1.0)):
            if i >= 0 and k >= 0:
                g[i, k] += val
        c[j, j] -= self.inductance

    def clone(self) -> "Inductor":
        return Inductor(self.name, *self.nodes, self.inductance, ic=self.ic)

    def describe(self) -> str:
        return f"L {self.name} {self.nodes[0]} {self.nodes[1]} {self.inductance:g}"


class VoltageSource(Element):
    """Independent voltage source (adds one branch-current unknown)."""

    n_branches = 1
    partition = PARTITION_SPLIT

    def __init__(self, name: str, plus: str, minus: str,
                 value: SourceValue) -> None:
        super().__init__(name, plus, minus)
        self.value = value

    def level(self, t: float) -> float:
        return evaluate_source(self.value, t)

    def stamp(self, sys, state) -> None:
        p, m = self._idx
        j = self._branch
        sys.add_g(p, j, 1.0)
        sys.add_g(m, j, -1.0)
        sys.add_g(j, p, 1.0)
        sys.add_g(j, m, -1.0)
        sys.add_b(j, self.level(state.t) * state.source_scale)

    def stamp_static(self, sys, state) -> None:
        p, m = self._idx
        j = self._branch
        sys.add_g(p, j, 1.0)
        sys.add_g(m, j, -1.0)
        sys.add_g(j, p, 1.0)
        sys.add_g(j, m, -1.0)

    def stamp_dynamic(self, sys, state) -> None:
        sys.add_b(self._branch, self.level(state.t) * state.source_scale)

    def stamp_ac(self, g, c, op) -> None:
        p, m = self._idx
        j = self._branch
        for (i, k, val) in ((p, j, 1.0), (m, j, -1.0), (j, p, 1.0), (j, m, -1.0)):
            if i >= 0 and k >= 0:
                g[i, k] += val

    def ac_input_vector(self, b: np.ndarray) -> None:
        """Mark this source as the small-signal input (unit excitation)."""
        b[self._branch] += 1.0

    def clone(self) -> "VoltageSource":
        return VoltageSource(self.name, *self.nodes, self.value)

    def describe(self) -> str:
        val = self.value if isinstance(self.value, (int, float)) else "<wave>"
        return f"V {self.name} {self.nodes[0]} {self.nodes[1]} {val}"


class CurrentSource(Element):
    """Independent current source flowing from node ``frm`` to ``to``."""

    def __init__(self, name: str, frm: str, to: str, value: SourceValue) -> None:
        super().__init__(name, frm, to)
        self.value = value

    def level(self, t: float) -> float:
        return evaluate_source(self.value, t)

    def stamp(self, sys, state) -> None:
        a, b = self._idx
        sys.add_current(a, b, self.level(state.t) * state.source_scale)

    def ac_input_vector(self, b_vec: np.ndarray) -> None:
        a, b = self._idx
        if a >= 0:
            b_vec[a] -= 1.0
        if b >= 0:
            b_vec[b] += 1.0

    def clone(self) -> "CurrentSource":
        return CurrentSource(self.name, *self.nodes, self.value)

    def describe(self) -> str:
        val = self.value if isinstance(self.value, (int, float)) else "<wave>"
        return f"I {self.name} {self.nodes[0]} {self.nodes[1]} {val}"


class VCVS(Element):
    """Voltage-controlled voltage source: v(out) = gain * v(in)."""

    n_branches = 1
    partition = PARTITION_STATIC

    def __init__(self, name: str, out_p: str, out_m: str, in_p: str,
                 in_m: str, gain: float) -> None:
        super().__init__(name, out_p, out_m, in_p, in_m)
        self.gain = float(gain)

    def stamp(self, sys, state) -> None:
        op_, om, ip, im = self._idx
        j = self._branch
        sys.add_g(op_, j, 1.0)
        sys.add_g(om, j, -1.0)
        sys.add_g(j, op_, 1.0)
        sys.add_g(j, om, -1.0)
        sys.add_g(j, ip, -self.gain)
        sys.add_g(j, im, self.gain)

    def stamp_ac(self, g, c, op) -> None:
        op_, om, ip, im = self._idx
        j = self._branch
        for (i, k, val) in ((op_, j, 1.0), (om, j, -1.0), (j, op_, 1.0),
                            (j, om, -1.0), (j, ip, -self.gain), (j, im, self.gain)):
            if i >= 0 and k >= 0:
                g[i, k] += val

    def clone(self) -> "VCVS":
        return VCVS(self.name, *self.nodes, self.gain)


class VCCS(Element):
    """Voltage-controlled current source: i(out_p→out_m) = gm * v(in)."""

    partition = PARTITION_STATIC

    def __init__(self, name: str, out_p: str, out_m: str, in_p: str,
                 in_m: str, transconductance: float) -> None:
        super().__init__(name, out_p, out_m, in_p, in_m)
        self.gm = float(transconductance)

    def stamp(self, sys, state) -> None:
        op_, om, ip, im = self._idx
        sys.add_transconductance(op_, om, ip, im, self.gm)

    def stamp_ac(self, g, c, op) -> None:
        op_, om, ip, im = self._idx
        for (i, k, val) in ((op_, ip, self.gm), (op_, im, -self.gm),
                            (om, ip, -self.gm), (om, im, self.gm)):
            if i >= 0 and k >= 0:
                g[i, k] += val

    def clone(self) -> "VCCS":
        return VCCS(self.name, *self.nodes, self.gm)


class Switch(Element):
    """Voltage-controlled resistive switch.

    Conducts (``r_on``) when the control voltage ``v(ctrl_p) - v(ctrl_m)``
    exceeds ``v_on``, otherwise presents ``r_off``.  A narrow linear
    transition region keeps Newton well-behaved.
    """

    partition = PARTITION_NONLINEAR

    def __init__(self, name: str, a: str, b: str, ctrl_p: str, ctrl_m: str,
                 v_on: float = 2.5, r_on: float = 100.0,
                 r_off: float = 1e9, transition: float = 0.2) -> None:
        if r_on <= 0 or r_off <= 0:
            raise ValueError(f"{name}: switch resistances must be positive")
        if transition <= 0:
            raise ValueError(f"{name}: transition width must be positive")
        super().__init__(name, a, b, ctrl_p, ctrl_m)
        self.v_on = float(v_on)
        self.r_on = float(r_on)
        self.r_off = float(r_off)
        self.transition = float(transition)

    def _conductance(self, v_ctrl: float) -> float:
        # log-linear interpolation between off and on conductance
        frac = (v_ctrl - (self.v_on - self.transition / 2.0)) / self.transition
        frac = min(1.0, max(0.0, frac))
        g_on = 1.0 / self.r_on
        g_off = 1.0 / self.r_off
        return g_off * (g_on / g_off) ** frac

    def stamp(self, sys, state) -> None:
        a, b, cp, cm = self._idx
        v_ctrl = state.voltage(cp) - state.voltage(cm)
        # The control is treated as an ideal (infinite-impedance) input;
        # using the previous iterate keeps the Jacobian symmetric/simple.
        sys.add_conductance(a, b, self._conductance(v_ctrl))

    def stamp_ac(self, g, c, op) -> None:
        a, b, cp, cm = self._idx
        v_ctrl = self._v(op, cp) - self._v(op, cm)
        _stamp_cond(g, a, b, self._conductance(v_ctrl))

    def clone(self) -> "Switch":
        return Switch(self.name, *self.nodes, self.v_on, self.r_on,
                      self.r_off, self.transition)


def _stamp_cond(mat: np.ndarray, a: int, b: int, g: float) -> None:
    """Stamp a two-terminal conductance/capacitance into a dense matrix."""
    if a >= 0:
        mat[a, a] += g
    if b >= 0:
        mat[b, b] += g
    if a >= 0 and b >= 0:
        mat[a, b] -= g
        mat[b, a] -= g
