"""Small-signal linearisation: poles, zeros and transfer functions.

This is the HSPICE ``.PZ`` / ``.AC`` substitute used by the paper's second
test method: linearise the circuit at its DC operating point into the MNA
pencil ``(G + sC) x = b u``, then

* poles   = finite generalised eigenvalues of ``(-G, C)``,
* zeros   = finite generalised eigenvalues of the augmented pencil that
  forces the output to zero,
* H(s)    = ``c^T (G + sC)^{-1} b`` evaluated anywhere in the s-plane.

:func:`extract_transfer_function` packages poles/zeros/constant into a
:class:`~repro.lti.transferfunction.TransferFunction`, the exact object
the paper builds its Matlab state-space matrices from.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.linalg

from repro.lti.transferfunction import TransferFunction, tf_from_poles_zeros
from repro.spice.elements import CurrentSource, VoltageSource
from repro.spice.mna import Assembler
from repro.spice.netlist import Circuit
from repro.spice.solver import dc_operating_point


def small_signal_matrices(circuit: Circuit,
                          op_vector: Optional[np.ndarray] = None):
    """Linearise at the operating point.

    Returns ``(assembler, G, C, op_vector)`` where ``G`` and ``C`` are the
    MNA conductance and capacitance matrices at the OP.
    """
    if op_vector is None:
        _, op_vector = dc_operating_point(circuit)
    assembler = Assembler(circuit)
    n = assembler.n
    g = np.zeros((n, n))
    c = np.zeros((n, n))
    for elem in circuit.elements:
        elem.stamp_ac(g, c, op_vector)
    # Small gmin keeps G nonsingular for floating gates.
    for i in range(assembler.n_nodes):
        g[i, i] += 1e-12
    return assembler, g, c, op_vector


def _input_vector(assembler: Assembler, source_name: str) -> np.ndarray:
    elem = assembler.circuit.element(source_name)
    if not isinstance(elem, (VoltageSource, CurrentSource)):
        raise TypeError(f"{source_name!r} is not an independent source")
    b = np.zeros(assembler.n)
    elem.ac_input_vector(b)
    return b


def _output_vector(assembler: Assembler, output_node: str) -> np.ndarray:
    c_vec = np.zeros(assembler.n)
    idx = assembler.index.get(assembler.circuit.canonical_node(output_node), -1)
    if idx < 0:
        raise KeyError(f"unknown output node {output_node!r}")
    c_vec[idx] = 1.0
    return c_vec


def _finite_eigs(a: np.ndarray, b: np.ndarray,
                 cutoff: float = 1e12) -> np.ndarray:
    """Finite generalised eigenvalues of the pencil (a, b)."""
    alpha, beta = scipy.linalg.eig(a, b, right=False, homogeneous_eigvals=True)
    finite = np.abs(beta) > 1e-300
    eigs = alpha[finite] / beta[finite]
    eigs = eigs[np.isfinite(eigs)]
    return eigs[np.abs(eigs) < cutoff]


def circuit_poles(circuit: Circuit, op_vector: Optional[np.ndarray] = None,
                  cutoff: float = 1e12) -> np.ndarray:
    """Natural frequencies of the linearised circuit (rad/s).

    Solves ``(G + sC) x = 0``: poles are the finite generalised
    eigenvalues of the pencil ``(-G, C)``.  ``cutoff`` discards the
    near-infinite modes created by the gmin regularisation.
    """
    _, g, c, _ = small_signal_matrices(circuit, op_vector)
    return _finite_eigs(-g, c, cutoff=cutoff)


def circuit_zeros(circuit: Circuit, input_source: str, output_node: str,
                  op_vector: Optional[np.ndarray] = None,
                  cutoff: float = 1e12) -> np.ndarray:
    """Transmission zeros of the path input_source → output_node.

    A zero is an ``s`` where a nonzero (x, u) satisfies
    ``(G + sC)x = b u`` with ``c^T x = 0`` — i.e. a finite generalised
    eigenvalue of the augmented pencil.
    """
    assembler, g, c, _op = small_signal_matrices(circuit, op_vector)
    b = _input_vector(assembler, input_source)
    c_vec = _output_vector(assembler, output_node)
    n = assembler.n
    a0 = np.zeros((n + 1, n + 1))
    a1 = np.zeros((n + 1, n + 1))
    a0[:n, :n] = g
    a0[:n, n] = -b
    a0[n, :n] = c_vec
    a1[:n, :n] = c
    return _finite_eigs(-a0, a1, cutoff=cutoff)


class FrequencyPencil:
    """Pre-factorised ``(G + sC)`` solver for frequency sweeps.

    A sweep evaluates the same pencil at many ``s`` points; a fresh
    dense solve costs O(n^3) *per point*.  This class computes the
    generalised Schur (QZ) decomposition ``G = Q S Z^H``,
    ``C = Q T Z^H`` once — the factorisation covers *every* ``s``
    simultaneously, because ``G + sC = Q (S + sT) Z^H`` with
    ``S + sT`` triangular — so each point costs one O(n^2)
    back-substitution:

        ``(S + sT) y = Q^H b``,  ``x = Z y``.

    Results match a per-point ``np.linalg.solve(g + s*c, b)`` to
    solver round-off (pinned by the regression tests), not bitwise.
    """

    def __init__(self, g: np.ndarray, c: np.ndarray) -> None:
        self._s_mat, self._t_mat, q, self._z = scipy.linalg.qz(
            np.asarray(g, dtype=complex), np.asarray(c, dtype=complex),
            output="complex")
        self._qh = q.conj().T
        self.n = self._s_mat.shape[0]

    def solve(self, b: np.ndarray, s: complex) -> np.ndarray:
        """``x`` with ``(G + sC) x = b`` at one ``s`` point."""
        qb = self._qh @ np.asarray(b, dtype=complex)
        y = scipy.linalg.solve_triangular(self._s_mat + s * self._t_mat, qb,
                                          check_finite=False)
        return self._z @ y

    def sweep(self, b: np.ndarray,
              s_values: np.ndarray) -> np.ndarray:
        """Solutions at every ``s`` in ``s_values`` (rows of the
        result), all through the single factorisation."""
        qb = self._qh @ np.asarray(b, dtype=complex)
        out = np.empty((len(s_values), self.n), dtype=complex)
        for i, s in enumerate(s_values):
            y = scipy.linalg.solve_triangular(
                self._s_mat + s * self._t_mat, qb, check_finite=False)
            out[i] = self._z @ y
        return out

    def transfer(self, b: np.ndarray, c_vec: np.ndarray,
                 s_values: np.ndarray) -> np.ndarray:
        """``c^T (G + sC)^{-1} b`` at every ``s`` in ``s_values``."""
        return self.sweep(b, s_values) @ np.asarray(c_vec, dtype=complex)


def transfer_function_at(circuit: Circuit, input_source: str,
                         output_node: str, s,
                         op_vector: Optional[np.ndarray] = None):
    """Evaluate the small-signal transfer function H(s).

    ``s`` may be a scalar (returns ``complex``, one direct solve) or an
    array of s-points (returns an ``ndarray``; all points share one
    :class:`FrequencyPencil` factorisation instead of a dense solve
    per point).
    """
    assembler, g, c, _op = small_signal_matrices(circuit, op_vector)
    b = _input_vector(assembler, input_source)
    c_vec = _output_vector(assembler, output_node)
    if np.ndim(s) == 0:
        x = np.linalg.solve(g + s * c, b.astype(complex))
        return complex(c_vec @ x)
    pencil = FrequencyPencil(g, c)
    return pencil.transfer(b, c_vec, np.asarray(s, dtype=complex))


def extract_transfer_function(circuit: Circuit, input_source: str,
                              output_node: str,
                              op_vector: Optional[np.ndarray] = None,
                              cutoff: float = 1e12,
                              max_order: Optional[int] = None
                              ) -> TransferFunction:
    """Extract poles/zeros/constant and build a TransferFunction.

    This is the full "HSPICE → Matlab" step of the paper: the rational
    model's constant is fitted so H matches the exact MNA evaluation at a
    reference frequency.  ``max_order`` optionally keeps only the
    slowest (most dominant) poles, which is how hand analysis reduces a
    transistor-level circuit to a tractable model.
    """
    if op_vector is None:
        _, op_vector = dc_operating_point(circuit)
    poles = circuit_poles(circuit, op_vector, cutoff=cutoff)
    zeros = circuit_zeros(circuit, input_source, output_node,
                          op_vector, cutoff=cutoff)
    if max_order is not None and len(poles) > max_order:
        order = np.argsort(np.abs(poles.real))
        poles = poles[order[:max_order]]
        zeros = zeros[np.argsort(np.abs(zeros.real))[:max(0, max_order - 1)]]
    # Pair up conjugates cleanly (numerical noise can de-pair them).
    poles = _symmetrize(poles)
    zeros = _symmetrize(zeros)
    tf = tf_from_poles_zeros(poles, zeros, constant=1.0)
    # Fit the constant at a reference frequency well inside the passband.
    ref_mag = max((abs(p.real) for p in poles), default=1.0)
    s_ref = 1j * 1e-3 * ref_mag if len(poles) else 0.0
    h_exact = transfer_function_at(circuit, input_source, output_node,
                                   s_ref, op_vector)
    h_model = tf.evaluate(s_ref)
    if abs(h_model) < 1e-300:
        raise ValueError("degenerate rational model (H_model ~ 0)")
    k = (h_exact / h_model).real
    return tf_from_poles_zeros(poles, zeros, constant=k)


def _symmetrize(values: np.ndarray, imag_tol: float = 1e-6) -> np.ndarray:
    """Force near-real eigenvalues real so np.poly gives real coefficients."""
    values = np.asarray(values, dtype=complex)
    out = []
    for v in values:
        if abs(v.imag) <= imag_tol * max(1.0, abs(v.real)):
            out.append(complex(v.real, 0.0))
        else:
            out.append(v)
    return np.asarray(out, dtype=complex)
