"""Response compaction: multiple-input signature registers.

The paper's compressed test "compress[es] the digital output signature
from the consecutive application of the DC step input values".  A MISR is
the canonical on-chip compactor for that job: it folds a stream of output
words into a fixed-width signature whose final value is compared against
the known-good signature.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.signals.prbs import MAXIMAL_TAPS


class MISR:
    """Multiple-input signature register.

    A Galois-style LFSR whose stages are additionally XOR-ed with the
    parallel input word each clock.  Width defaults to 16 bits, the
    natural size for compacting the ADC's output codes.
    """

    def __init__(self, width: int = 16, taps: Optional[Sequence[int]] = None,
                 seed: int = 0) -> None:
        if width < 2:
            raise ValueError("MISR width must be >= 2")
        if not 0 <= seed < (1 << width):
            raise ValueError("seed does not fit in the register width")
        if taps is None:
            if width not in MAXIMAL_TAPS:
                raise ValueError(f"no default taps for width {width}; pass taps=")
            taps = MAXIMAL_TAPS[width]
        self.width = width
        self.taps = tuple(sorted(set(int(t) for t in taps)))
        if any(t < 1 or t > width for t in self.taps):
            raise ValueError(f"taps must lie in 1..{width}")
        self._poly = 0
        for t in self.taps:
            self._poly |= 1 << (t - 1)
        self.state = int(seed)
        self._seed = int(seed)
        self.n_clocked = 0

    def reset(self) -> None:
        self.state = self._seed
        self.n_clocked = 0

    def clock(self, word: int = 0) -> int:
        """Shift once, folding in ``word`` (masked to the width)."""
        word &= (1 << self.width) - 1
        msb = (self.state >> (self.width - 1)) & 1
        self.state = ((self.state << 1) & ((1 << self.width) - 1))
        if msb:
            self.state ^= self._poly
        self.state ^= word
        self.n_clocked += 1
        return self.state

    def compact(self, words: Iterable[int]) -> int:
        """Clock in a whole response stream; return the final signature."""
        for word in words:
            self.clock(word)
        return self.state

    def signature(self) -> int:
        return self.state

    def signature_hex(self) -> str:
        digits = (self.width + 3) // 4
        return f"{self.state:0{digits}X}"


class SignatureRegister:
    """Known-good-signature comparator.

    Wraps a :class:`MISR` with the expected value and a pass/fail check —
    the on-chip comparison step of the compressed test.
    """

    def __init__(self, width: int = 16, expected: Optional[int] = None,
                 taps: Optional[Sequence[int]] = None) -> None:
        self.misr = MISR(width=width, taps=taps)
        self.expected = expected

    def learn(self, words: Sequence[int]) -> int:
        """Record the golden signature from a known-good response."""
        self.misr.reset()
        self.expected = self.misr.compact(words)
        return self.expected

    def check(self, words: Sequence[int]) -> bool:
        """Compact a response stream and compare against the golden value."""
        if self.expected is None:
            raise RuntimeError("no expected signature; call learn() first")
        self.misr.reset()
        return self.misr.compact(words) == self.expected

    def aliasing_probability(self) -> float:
        """Probability a random wrong stream aliases to the good signature
        (the classic 2^-k bound for a k-bit MISR)."""
        return 2.0 ** (-self.misr.width)
