"""Digital design-for-test substrate.

The paper's digital test structures (484 transistors) provide scan access,
pattern generation, response compaction and the counter/state-machine
monitors used by the ADC BIST.  This package models those structures at
the register-transfer level: scan shift registers and chains, a serial
test bus, LFSR pattern generators, MISR signature compactors, and the
counter macro clocked at 100 kHz.
"""

from repro.dft.lfsr import MISR, SignatureRegister
from repro.dft.scan import ScanRegister, ScanChain
from repro.dft.testbus import SerialTestBus, BusTransaction
from repro.dft.counter import CounterMacro
from repro.dft.bist_engine import (
    BISTSession,
    LogicBISTEngine,
    stuck_at_output_variants,
)

__all__ = [
    "MISR",
    "SignatureRegister",
    "ScanRegister",
    "ScanChain",
    "SerialTestBus",
    "BusTransaction",
    "CounterMacro",
    "BISTSession",
    "LogicBISTEngine",
    "stuck_at_output_variants",
]
