"""Serial test bus.

Models the single-wire test access the related-work architectures use to
move stimulus words in and response words out of an embedded macro: a
simple framed protocol (address, read/write, payload) over a scan-style
serial link.  The BIST controller uses it to talk to the ADC's registers
without dedicated parallel test pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class BusTransaction:
    """One framed transfer recorded by the bus monitor."""

    address: int
    write: bool
    data: int
    bits_on_wire: int

    def describe(self) -> str:
        kind = "WR" if self.write else "RD"
        return f"{kind} @0x{self.address:02X} = 0x{self.data:04X}"


class SerialTestBus:
    """A master-driven serial test bus with memory-mapped registers.

    Frame format (LSB first on the wire):
      [start=1][addr:8][rw:1][data:16][parity:1]

    Registers are plain integers held in a dict; macro models register
    callbacks to react to writes (e.g. "start conversion") and to supply
    read data lazily.
    """

    ADDR_BITS = 8
    DATA_BITS = 16

    def __init__(self) -> None:
        self.registers: Dict[int, int] = {}
        self._write_hooks: Dict[int, callable] = {}
        self._read_hooks: Dict[int, callable] = {}
        self.log: List[BusTransaction] = []
        self.wire_bits = 0

    # ------------------------------------------------------------------
    def attach_register(self, address: int, initial: int = 0,
                        on_write=None, on_read=None) -> None:
        """Declare a register at ``address`` with optional access hooks."""
        if not 0 <= address < (1 << self.ADDR_BITS):
            raise ValueError("address out of range")
        self.registers[address] = initial & ((1 << self.DATA_BITS) - 1)
        if on_write is not None:
            self._write_hooks[address] = on_write
        if on_read is not None:
            self._read_hooks[address] = on_read

    def _frame_bits(self) -> int:
        return 1 + self.ADDR_BITS + 1 + self.DATA_BITS + 1

    # ------------------------------------------------------------------
    def write(self, address: int, data: int) -> BusTransaction:
        """Master write; runs the register's write hook."""
        self._check(address)
        data &= (1 << self.DATA_BITS) - 1
        self.registers[address] = data
        hook = self._write_hooks.get(address)
        if hook is not None:
            hook(data)
        return self._record(address, True, data)

    def read(self, address: int) -> int:
        """Master read; the read hook may refresh the register first."""
        self._check(address)
        hook = self._read_hooks.get(address)
        if hook is not None:
            self.registers[address] = hook() & ((1 << self.DATA_BITS) - 1)
        data = self.registers[address]
        self._record(address, False, data)
        return data

    def _check(self, address: int) -> None:
        if address not in self.registers:
            raise KeyError(f"no register at address 0x{address:02X}")

    def _record(self, address: int, write: bool, data: int) -> BusTransaction:
        txn = BusTransaction(address=address, write=write, data=data,
                             bits_on_wire=self._frame_bits())
        self.log.append(txn)
        self.wire_bits += txn.bits_on_wire
        return txn

    # ------------------------------------------------------------------
    def serialize(self, txn: BusTransaction) -> List[int]:
        """Bit-level frame for a transaction (LSB-first), with odd parity."""
        bits = [1]
        bits += [(txn.address >> i) & 1 for i in range(self.ADDR_BITS)]
        bits += [1 if txn.write else 0]
        bits += [(txn.data >> i) & 1 for i in range(self.DATA_BITS)]
        parity = (sum(bits) + 1) & 1
        bits.append(parity)
        return bits

    @staticmethod
    def deserialize(bits: List[int]) -> Tuple[int, bool, int]:
        """Decode a frame; raises on bad start bit or parity."""
        expect = 1 + SerialTestBus.ADDR_BITS + 1 + SerialTestBus.DATA_BITS + 1
        if len(bits) != expect:
            raise ValueError(f"frame must be {expect} bits")
        if bits[0] != 1:
            raise ValueError("missing start bit")
        if (sum(bits[:-1]) + 1) & 1 != bits[-1]:
            raise ValueError("parity error")
        pos = 1
        addr = sum(bits[pos + i] << i for i in range(SerialTestBus.ADDR_BITS))
        pos += SerialTestBus.ADDR_BITS
        write = bool(bits[pos])
        pos += 1
        data = sum(bits[pos + i] << i for i in range(SerialTestBus.DATA_BITS))
        return addr, write, data
