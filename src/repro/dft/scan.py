"""Scan shift registers and scan chains.

The related-work architectures the paper builds on (Fasang, Ohletz,
Pritchard) scan analogue test data in "via scan shift registers" and
capture responses for the serial test bus.  These classes model that
digital access mechanism bit-accurately.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


class ScanRegister:
    """A single scan-able register of ``width`` bits.

    In *functional* mode the register holds a parallel word; in *scan*
    mode it shifts serially (LSB first out).
    """

    def __init__(self, width: int, name: str = "reg") -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        self.name = name
        self.bits: List[int] = [0] * width

    @property
    def value(self) -> int:
        return sum(b << i for i, b in enumerate(self.bits))

    def load(self, value: int) -> None:
        """Parallel (functional) load."""
        if not 0 <= value < (1 << self.width):
            raise ValueError(f"value does not fit in {self.width} bits")
        self.bits = [(value >> i) & 1 for i in range(self.width)]

    def shift(self, scan_in: int) -> int:
        """One scan clock: shift in ``scan_in``, return the bit shifted out."""
        out = self.bits[0]
        self.bits = self.bits[1:] + [1 if scan_in else 0]
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"ScanRegister({self.name!r}, width={self.width}, value={self.value})"


class ScanChain:
    """Registers stitched into a serial chain (scan-out of one feeds the
    next register's scan-in)."""

    def __init__(self, registers: Sequence[ScanRegister]) -> None:
        if not registers:
            raise ValueError("chain needs at least one register")
        self.registers = list(registers)

    @property
    def length(self) -> int:
        return sum(r.width for r in self.registers)

    def shift(self, scan_in: int) -> int:
        """One chain-wide scan clock."""
        bit = 1 if scan_in else 0
        for reg in self.registers:
            bit = reg.shift(bit)
        return bit

    def shift_in(self, bits: Iterable[int]) -> List[int]:
        """Shift a bit sequence in; returns the bits that fell out."""
        return [self.shift(b) for b in bits]

    def load_serial(self, bits: Sequence[int]) -> None:
        """Fill the entire chain with ``bits`` (first bit ends up deepest,
        i.e. as the last register's MSB after a full shift sequence)."""
        if len(bits) != self.length:
            raise ValueError(f"need exactly {self.length} bits, got {len(bits)}")
        for b in bits:
            self.shift(b)

    def capture_serial(self) -> List[int]:
        """Shift the whole chain out (zero fill); returns captured bits in
        shift-out order."""
        return self.shift_in([0] * self.length)

    def values(self) -> List[int]:
        return [r.value for r in self.registers]

    def load_values(self, values: Sequence[int]) -> None:
        """Parallel-load each register (functional capture)."""
        if len(values) != len(self.registers):
            raise ValueError("one value per register required")
        for reg, value in zip(self.registers, values):
            reg.load(value)
