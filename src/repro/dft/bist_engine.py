"""Digital logic BIST engine: LFSR pattern generator + MISR + controller.

The paper notes that "the digital test structures could also be used to
test further digital areas of a mixed chip".  This module packages the
reusable digital BIST: a pattern-generator LFSR feeding a combinational
or sequential block under test, a MISR compacting its responses, and a
small controller sequencing a fixed-length session and comparing the
final signature.

The block under test is any callable ``int -> int`` (a gate-level model,
a lookup table, a Python function), which is how the repository's
digital sub-macros (counter decode logic, latch, level-sensor encoder)
get wrapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.dft.lfsr import MISR
from repro.obs.core import OBS
from repro.obs.core import span as obs_span
from repro.signals.prbs import LFSR


@dataclass
class BISTSession:
    """Result of one self-test session."""

    patterns_applied: int
    signature: int
    expected: Optional[int]
    #: trace span of the session run (RunResult protocol; set when an
    #: observation scope was active).
    trace: Any = field(default=None, repr=False, compare=False)

    @property
    def passed(self) -> bool:
        if self.expected is None:
            raise RuntimeError("no expected signature configured")
        return self.signature == self.expected

    # -- RunResult protocol --------------------------------------------
    def summary(self) -> str:
        if self.expected is None:
            verdict = "signature learned (no golden reference)"
        else:
            verdict = "PASS" if self.passed else "FAIL (signature mismatch)"
        return (f"BIST session: {self.patterns_applied} patterns, "
                f"signature 0x{self.signature:04x}, {verdict}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": "bist_session",
            "patterns_applied": self.patterns_applied,
            "signature": self.signature,
            "expected": self.expected,
            "passed": self.passed if self.expected is not None else None,
        }
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        return out

    def report(self) -> str:
        """Terminal report: summary plus the run's span profile."""
        from repro.obs.report import result_report
        return result_report(self)


class LogicBISTEngine:
    """LFSR-TPG → block under test → MISR, with a golden signature.

    Parameters
    ----------
    width:
        Input width of the block under test; the TPG supplies ``width``
        pseudo-random bits per pattern.
    n_patterns:
        Patterns per session (defaults to the TPG's full period, capped
        at 4096).
    misr_width:
        Compactor width.
    """

    def __init__(self, width: int, n_patterns: Optional[int] = None,
                 misr_width: int = 16, seed: int = 1) -> None:
        if width < 2:
            raise ValueError("width must be >= 2")
        self.width = width
        self._tpg_order = max(4, min(width, 16))
        if self._tpg_order not in (4, 5, 6, 7, 8, 9, 10, 11, 12, 15, 16):
            self._tpg_order = 16
        self.seed = seed
        period = (1 << self._tpg_order) - 1
        if n_patterns is None:
            n_patterns = period
        if n_patterns < 1:
            raise ValueError("n_patterns must be >= 1")
        self.n_patterns = min(n_patterns, 4096)
        self.misr_width = misr_width
        self.golden: Optional[int] = None

    # ------------------------------------------------------------------
    def patterns(self) -> List[int]:
        """The session's pseudo-random input patterns."""
        lfsr = LFSR(self._tpg_order, seed=self.seed)
        mask = (1 << self.width) - 1
        out = []
        for _ in range(self.n_patterns):
            # roll the register once per pattern; use its state as the
            # parallel pattern (standard pseudo-random TPG practice)
            lfsr.step()
            out.append(lfsr.state & mask)
        return out

    def run(self, block: Callable[[int], int]) -> BISTSession:
        """Apply the session to a block; compact its outputs."""
        with obs_span("bist_session", width=self.width,
                      n_patterns=self.n_patterns) as sp:
            misr = MISR(width=self.misr_width)
            n = 0
            for pattern in self.patterns():
                misr.clock(block(pattern))
                n += 1
            session = BISTSession(patterns_applied=n,
                                  signature=misr.signature(),
                                  expected=self.golden)
            if OBS.enabled:
                m = OBS.metrics
                m.counter("bist.sessions").inc()
                m.counter("bist.patterns_applied").inc(n)
                mismatch = (session.expected is not None
                            and session.signature != session.expected)
                if mismatch:
                    m.counter("bist.signature_mismatches").inc()
                sp.set(patterns_applied=n,
                       signature=session.signature,
                       mismatch=mismatch)
                session.trace = sp
        return session

    def learn(self, golden_block: Callable[[int], int]) -> int:
        """Record the golden signature from a known-good block."""
        self.golden = self.run(golden_block).signature
        return self.golden

    def self_test(self, block: Callable[[int], int]) -> bool:
        """One-call pass/fail against the learned golden signature."""
        if self.golden is None:
            raise RuntimeError("no golden signature; call learn() first")
        return self.run(block).passed

    # ------------------------------------------------------------------
    def fault_coverage(self, golden_block: Callable[[int], int],
                       faulty_blocks: Dict[str, Callable[[int], int]]
                       ) -> Dict[str, bool]:
        """Which of the given faulty variants the session detects."""
        if self.golden is None:
            self.learn(golden_block)
        return {name: not self.self_test(block)
                for name, block in faulty_blocks.items()}


def stuck_at_output_variants(block: Callable[[int], int], out_width: int,
                             ) -> Dict[str, Callable[[int], int]]:
    """Generate the classic output stuck-at fault set for a block."""
    if out_width < 1:
        raise ValueError("out_width must be >= 1")
    variants: Dict[str, Callable[[int], int]] = {}
    for bit in range(out_width):
        for value in (0, 1):
            def make(bit=bit, value=value):
                mask = 1 << bit
                if value:
                    return lambda x: block(x) | mask
                return lambda x: block(x) & ~mask
            variants[f"out{bit}-sa{value}"] = make()
    return variants
