"""The digital counter macro.

The dual-slope ADC's conversion result is a count of clock cycles during
the de-integration phase; the paper runs "the counter macro ... at
100 kHz clock speed as recommended".  This model is cycle-accurate and
also supports the fault modes the paper attributes to the counter
sub-macro (stuck bits showing up as INL/DNL error or regular missed
codes).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CounterTimeout


class CounterMacro:
    """A binary up-counter with enable, clear and stuck-bit fault hooks."""

    def __init__(self, width: int = 8, clock_hz: float = 100e3) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        self.width = width
        self.clock_hz = clock_hz
        self.count = 0
        self.overflowed = False
        #: bit index -> forced value (stuck-at fault injection point)
        self.stuck_bits: dict = {}

    @property
    def max_count(self) -> int:
        return (1 << self.width) - 1

    @property
    def clock_period(self) -> float:
        return 1.0 / self.clock_hz

    def clear(self) -> None:
        self.count = 0
        self.overflowed = False

    def _apply_stuck(self, value: int) -> int:
        for bit, forced in self.stuck_bits.items():
            if forced:
                value |= (1 << bit)
            else:
                value &= ~(1 << bit)
        return value & self.max_count

    def clock(self, enable: bool = True) -> int:
        """One clock edge; returns the (possibly faulted) count."""
        if enable:
            nxt = self.count + 1
            if nxt > self.max_count:
                self.overflowed = True
                nxt &= self.max_count
            self.count = self._apply_stuck(nxt)
        else:
            self.count = self._apply_stuck(self.count)
        return self.count

    def run_for(self, seconds: float, enable: bool = True) -> int:
        """Clock continuously for a time interval; returns the count."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        cycles = int(seconds * self.clock_hz)
        for _ in range(cycles):
            self.clock(enable)
        return self.count

    def count_until(self, predicate, max_cycles: Optional[int] = None) -> int:
        """Clock until ``predicate(count)`` is true; returns cycles used.

        This is the ADC control loop's "count while the comparator is
        high" primitive.  Raises :class:`~repro.errors.CounterTimeout`
        past ``max_cycles`` (default: one full wrap) — a stopped
        conversion is precisely the control-fault signature the paper
        describes.  (``CounterTimeout`` keeps :class:`TimeoutError` as a
        base for compatibility, but is a *functional* verdict about the
        device under test — deliberately distinct from the resilience
        layer's wall-clock :class:`~repro.errors.DeadlineExceeded`.)
        """
        limit = max_cycles if max_cycles is not None else self.max_count + 1
        for cycles in range(limit):
            if predicate(self.count):
                return cycles
            self.clock()
        raise CounterTimeout(
            f"counter reached {limit} cycles without the predicate holding")

    def time_to_count(self, count: int) -> float:
        """Seconds the counter needs to reach ``count`` from zero."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return count * self.clock_period

    def sequence(self, n: int) -> List[int]:
        """The next ``n`` counted values (useful for missed-code checks)."""
        return [self.clock() for _ in range(n)]
