"""``python -m repro.experiments [E1 E7 ...]`` — regenerate the paper's
evaluation tables/figures from the command line."""

import sys

from repro.experiments.registry import run_all


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    run_all(args or None)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
