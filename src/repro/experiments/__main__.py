"""``python -m repro.experiments [E1 E7 ...]`` — regenerate the paper's
evaluation tables/figures from the command line.

Options
-------
``--json``
    Emit one machine-readable JSON document (id → ExperimentRun
    ``to_dict()`` shape) instead of the human summaries.
``--trace FILE``
    Also write the session's full observability report (trace tree +
    metrics) to ``FILE`` (``-`` for stdout).
``--report``
    Print the session's terminal summary report (root spans, hotspot
    profile, metrics, notable events) after the runs.
``--html FILE``
    Write the same report as a standalone HTML document (with the
    Chrome trace embedded for Perfetto).
``--no-obs``
    Run uninstrumented (no tracing/metrics overhead).

Exit codes
----------
``0``
    Every run completed fully.
``3``
    At least one run was *partial* — a fault campaign inside it timed
    out, quarantined or skipped faults (see the run's ``failures``
    payload).  Results are still emitted; the code keeps CI and batch
    drivers from mistaking a degraded sweep for a complete one.
"""

import argparse
import json
import sys

from repro.session import Session


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiments (default: all).")
    parser.add_argument("ids", nargs="*", metavar="ID",
                        help="experiment ids (e.g. E1 e7); default all")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable JSON records")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write the session trace/metrics report "
                             "to FILE ('-' for stdout)")
    parser.add_argument("--report", action="store_true",
                        help="print the session's terminal summary "
                             "report after the runs")
    parser.add_argument("--html", metavar="FILE", default=None,
                        help="write the session report as a standalone "
                             "HTML document")
    parser.add_argument("--no-obs", action="store_true",
                        help="disable tracing/metrics for this run")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    session = Session(obs=not args.no_obs, name="repro.experiments")
    records = session.run_experiments(args.ids or None,
                                      echo=not args.as_json)
    if args.as_json:
        doc = {exp_id: run.to_dict() for exp_id, run in records.items()}
        print(json.dumps(doc, indent=2, default=str))
    if args.trace is not None:
        report = session.trace_json()
        if args.trace == "-":
            print(report)
        else:
            with open(args.trace, "w", encoding="utf-8") as fh:
                fh.write(report + "\n")
            if not args.as_json:
                print(f"session trace written to {args.trace}")
    if args.report:
        print(session.report())
    if args.html is not None:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(session.report(html=True))
        if not args.as_json:
            print(f"HTML report written to {args.html}")
    partial = [exp_id for exp_id, run in records.items()
               if _is_partial(run.to_dict())]
    if partial:
        print(f"PARTIAL: incomplete results in {', '.join(partial)}",
              file=sys.stderr)
        return 3
    return 0


def _is_partial(doc) -> bool:
    """True when any nested result payload carries ``partial: True``."""
    if isinstance(doc, dict):
        if doc.get("partial") is True:
            return True
        return any(_is_partial(v) for v in doc.values())
    if isinstance(doc, (list, tuple)):
        return any(_is_partial(v) for v in doc)
    return False


if __name__ == "__main__":
    raise SystemExit(main())
