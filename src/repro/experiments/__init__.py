"""Experiment runners — one per table/figure in the paper's evaluation.

Each module exposes a ``run(...)`` function returning a structured result
with ``rows()`` (the table the paper printed) and ``summary()``.  The
benchmark files under ``benchmarks/`` execute these runners; the
experiment index lives in DESIGN.md and the measured-vs-paper record in
EXPERIMENTS.md.

=====  ==================================================================
E1     step-input fall-time table ("Analogue test results")
E2     ramp test + gain-error masking caveat
E3     digital test results (conversion time, 10 µs ↔ 10 mV)
E4     compressed test (MISR + 2-bit analogue signature)
E5     batch of 10 devices through the quick BIST
E6     Figure 2 — full characterisation, DNL vs code
E7     Figure 4 — detection instances, circuits 1/2/3
E8     circuit-2 z-domain design check, H(z) = z⁻¹/(6.8(1−z⁻¹))
E9     ADC transfer-function sanity (Figure 1 macro)
A1–A4  ablations (PRBS sweep, noise sweep, method comparison, overhead)
=====  ==================================================================
"""

from repro.experiments import (
    e1_step_table,
    e2_ramp_test,
    e3_digital_tests,
    e4_compressed,
    e5_batch10,
    e6_fig2_dnl,
    e7_fig4_detection,
    e8_zdomain,
    e9_adc_transfer,
)

__all__ = [
    "e1_step_table",
    "e2_ramp_test",
    "e3_digital_tests",
    "e4_compressed",
    "e5_batch10",
    "e6_fig2_dnl",
    "e7_fig4_detection",
    "e8_zdomain",
    "e9_adc_transfer",
]
