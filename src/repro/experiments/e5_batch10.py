"""E5 — the batch of 10 fabricated devices.

Paper: "A batch of 10 devices were fabricated.  These comprised the
built-in self test macros described and the ADC system.  All devices
passed the analogue, digital and compressed tests."

A Monte Carlo batch with realistic in-spec process spread must pass the
quick BIST on every device; a second batch with gross (out-of-spec)
defects injected must fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.adc.dual_slope import DualSlopeADC
from repro.core.bist import BISTController
from repro.process.batch import Batch, ScreenResult
from repro.process.variation import VariationModel, VariationSpec

#: In-spec device-to-device spread of the behavioural ADC parameters.
GOOD_VARIATION = [
    VariationSpec("cal.comparator_offset_v", sigma=1.0e-3, relative=False),
    VariationSpec("cal.deintegrate_gain", sigma=0.001, relative=False),
    VariationSpec("cal.cap_voltage_coeff", sigma=0.05, relative=True),
    VariationSpec("cal.counter_inject_v", sigma=0.1, relative=True),
    VariationSpec("cal.discharge_slope_v_per_s", sigma=0.002, relative=True),
]

#: A defective lot: the same spread plus a gross integrator gain defect.
def _defective_factory() -> DualSlopeADC:
    adc = DualSlopeADC()
    adc.integrator.gain = 0.6        # catastrophic charge-transfer loss
    return adc


@dataclass
class BatchResult:
    good: ScreenResult
    defective: ScreenResult

    @property
    def all_good_pass(self) -> bool:
        return len(self.good.failed) == 0

    @property
    def all_defective_fail(self) -> bool:
        return len(self.defective.passed) == 0

    def rows(self):
        return [
            ("good batch", len(self.good.devices), len(self.good.passed)),
            ("defective batch", len(self.defective.devices),
             len(self.defective.passed)),
        ]

    def summary(self) -> str:
        return ("E5 batch screening\n"
                f"good batch:      {self.good.describe()}\n"
                f"defective batch: {self.defective.describe()}")


def run(n_devices: int = 10, seed: int = 1996) -> BatchResult:
    """Screen a good batch and a defective batch through the quick BIST."""
    controller = BISTController()
    variation = VariationModel(GOOD_VARIATION, seed=seed)

    good = Batch(DualSlopeADC, variation).screen(
        n_devices, test=controller.quick_pass)
    defective = Batch(_defective_factory, variation).screen(
        n_devices, test=controller.quick_pass)
    return BatchResult(good=good, defective=defective)
