"""Experiment registry and command-line runner.

``python -m repro.experiments`` runs every registered experiment and
prints its summary — the quickest way to regenerate the paper's
evaluation section without pytest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    e1_step_table,
    e2_ramp_test,
    e3_digital_tests,
    e4_compressed,
    e5_batch10,
    e6_fig2_dnl,
    e7_fig4_detection,
    e8_zdomain,
    e9_adc_transfer,
)


@dataclass(frozen=True)
class Experiment:
    """One registered experiment."""

    exp_id: str
    title: str
    paper_artifact: str
    run: Callable[[], object]


REGISTRY: Dict[str, Experiment] = {}


def register(exp_id: str, title: str, paper_artifact: str,
             run: Callable[[], object]) -> None:
    if exp_id in REGISTRY:
        raise ValueError(f"duplicate experiment id {exp_id!r}")
    REGISTRY[exp_id] = Experiment(exp_id, title, paper_artifact, run)


register("E1", "step fall-time table", "Analogue test results",
         e1_step_table.run)
register("E2", "ramp test + masking caveat", "Analogue test results",
         e2_ramp_test.run)
register("E3", "digital test results", "Digital test results",
         e3_digital_tests.run)
register("E4", "compressed test", "Compressed test results",
         e4_compressed.run)
register("E5", "batch of 10 screening", "Batch fabrication paragraph",
         e5_batch10.run)
register("E6", "full ADC characterisation", "Figure 2",
         e6_fig2_dnl.run)
register("E7", "detection instances", "Figure 4",
         e7_fig4_detection.run)
register("E8", "z-domain design check", "H(z) design equation",
         e8_zdomain.run)
register("E9", "ADC transfer sanity", "Figure 1",
         e9_adc_transfer.run)


def run_experiment(exp_id: str):
    """Run one experiment by id and return its result object."""
    exp_id = exp_id.upper()
    if exp_id not in REGISTRY:
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"known: {sorted(REGISTRY)}")
    return REGISTRY[exp_id].run()


def run_all(ids: Optional[List[str]] = None, echo: bool = True) -> Dict[str, object]:
    """Run all (or the selected) experiments; returns id → result."""
    selected = [i.upper() for i in ids] if ids else sorted(REGISTRY)
    results = {}
    for exp_id in selected:
        exp = REGISTRY[exp_id]
        start = time.perf_counter()
        result = exp.run()
        elapsed = time.perf_counter() - start
        results[exp_id] = result
        if echo:
            print(f"--- {exp.exp_id}: {exp.title} "
                  f"({exp.paper_artifact}) [{elapsed:.1f} s]")
            print(result.summary())
            print()
    return results
