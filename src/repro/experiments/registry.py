"""Experiment registry and command-line runner.

``python -m repro.experiments`` runs every registered experiment and
prints its summary — the quickest way to regenerate the paper's
evaluation section without pytest.  ``--json`` emits the same
information machine-readably: every run is wrapped in an
:class:`ExperimentRun` record with the common ``summary()`` /
``to_dict()`` / ``trace`` RunResult shape shared by transients,
campaigns and BIST sessions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.experiments import (
    e1_step_table,
    e2_ramp_test,
    e3_digital_tests,
    e4_compressed,
    e5_batch10,
    e6_fig2_dnl,
    e7_fig4_detection,
    e8_zdomain,
    e9_adc_transfer,
)
from repro.obs.core import OBS, record
from repro.obs.core import span as obs_span


@dataclass(frozen=True)
class Experiment:
    """One registered experiment."""

    exp_id: str
    title: str
    paper_artifact: str
    run: Callable[[], object]


@dataclass
class ExperimentRun:
    """One executed experiment: its result plus run accounting."""

    exp_id: str
    title: str
    paper_artifact: str
    result: Any
    elapsed_s: float
    #: trace span of the run (RunResult protocol; set when an
    #: observation scope was active).
    trace: Any = field(default=None, repr=False, compare=False)

    # -- RunResult protocol --------------------------------------------
    def summary(self) -> str:
        header = (f"{self.exp_id}: {self.title} ({self.paper_artifact}) "
                  f"[{self.elapsed_s:.1f} s]")
        body = self.result.summary() if hasattr(self.result, "summary") \
            else repr(self.result)
        return f"{header}\n{body}"

    def to_dict(self) -> Dict[str, Any]:
        if hasattr(self.result, "to_dict"):
            result: Any = self.result.to_dict()
        elif hasattr(self.result, "summary"):
            result = {"summary": self.result.summary()}
        else:
            result = {"repr": repr(self.result)}
        out: Dict[str, Any] = {
            "kind": "experiment",
            "exp_id": self.exp_id,
            "title": self.title,
            "paper_artifact": self.paper_artifact,
            "elapsed_s": self.elapsed_s,
            "result": result,
        }
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        return out

    def report(self) -> str:
        """Terminal report: summary plus the run's span profile."""
        from repro.obs.report import result_report
        return result_report(self)


REGISTRY: Dict[str, Experiment] = {}


def register(exp_id: str, title: str, paper_artifact: str,
             run: Callable[[], object]) -> None:
    if exp_id in REGISTRY:
        raise ValueError(f"duplicate experiment id {exp_id!r}")
    REGISTRY[exp_id] = Experiment(exp_id, title, paper_artifact, run)


register("E1", "step fall-time table", "Analogue test results",
         e1_step_table.run)
register("E2", "ramp test + masking caveat", "Analogue test results",
         e2_ramp_test.run)
register("E3", "digital test results", "Digital test results",
         e3_digital_tests.run)
register("E4", "compressed test", "Compressed test results",
         e4_compressed.run)
register("E5", "batch of 10 screening", "Batch fabrication paragraph",
         e5_batch10.run)
register("E6", "full ADC characterisation", "Figure 2",
         e6_fig2_dnl.run)
register("E7", "detection instances", "Figure 4",
         e7_fig4_detection.run)
register("E8", "z-domain design check", "H(z) design equation",
         e8_zdomain.run)
register("E9", "ADC transfer sanity", "Figure 1",
         e9_adc_transfer.run)


def _lookup(exp_id: str) -> Experiment:
    exp_id = exp_id.upper()
    if exp_id not in REGISTRY:
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"known: {sorted(REGISTRY)}")
    return REGISTRY[exp_id]


def run_record(exp_id: str) -> ExperimentRun:
    """Run one experiment and wrap it in an :class:`ExperimentRun`."""
    exp = _lookup(exp_id)
    with obs_span("experiment", exp_id=exp.exp_id, title=exp.title) as sp:
        start = time.perf_counter()
        result = exp.run()
        elapsed = time.perf_counter() - start
        if OBS.enabled:
            OBS.metrics.counter("experiments.runs").inc()
            record("experiments.elapsed_s", elapsed)
            sp.set(elapsed_s=elapsed)
    run = ExperimentRun(exp.exp_id, exp.title, exp.paper_artifact,
                        result, elapsed)
    if OBS.enabled:
        run.trace = sp
    return run


def run_experiment(exp_id: str):
    """Run one experiment by id and return its raw result object."""
    return run_record(exp_id).result


def run_records(ids: Optional[List[str]] = None,
                echo: bool = True) -> Dict[str, ExperimentRun]:
    """Run all (or the selected) experiments; id → :class:`ExperimentRun`."""
    selected = [i.upper() for i in ids] if ids else sorted(REGISTRY)
    records: Dict[str, ExperimentRun] = {}
    for exp_id in selected:
        run = run_record(exp_id)
        records[exp_id] = run
        if echo:
            print(f"--- {run.summary()}")
            print()
    return records


def run_all(ids: Optional[List[str]] = None, echo: bool = True) -> Dict[str, object]:
    """Run all (or the selected) experiments; returns id → raw result.

    Kept for old call sites; :func:`run_records` returns the richer
    per-run records (timing, trace, ``to_dict()``).
    """
    return {exp_id: run.result
            for exp_id, run in run_records(ids, echo=echo).items()}
