"""E9 — ADC macro sanity (Figure 1).

The 250-gate dual-slope macro converts correctly over its full scale:
the transfer curve is monotonic, covers codes 0–100 over 0–2.5 V and
every conversion terminates inside the timing specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.adc.calibration import SPEC_MAX_CONVERSION_S
from repro.adc.dual_slope import DualSlopeADC
from repro.adc.histogram import transfer_curve


@dataclass
class TransferResult:
    v_in: np.ndarray
    codes: np.ndarray
    max_conversion_time_s: float
    all_completed: bool

    @property
    def monotonic(self) -> bool:
        return bool(np.all(np.diff(self.codes) >= 0))

    @property
    def full_range(self) -> Tuple[int, int]:
        return int(self.codes.min()), int(self.codes.max())

    @property
    def within_timing_spec(self) -> bool:
        return (self.all_completed
                and self.max_conversion_time_s <= SPEC_MAX_CONVERSION_S)

    def rows(self):
        lo, hi = self.full_range
        return [
            ("codes covered", f"{lo}..{hi}"),
            ("monotonic", self.monotonic),
            ("max conversion (ms)", 1e3 * self.max_conversion_time_s),
        ]

    def summary(self) -> str:
        lo, hi = self.full_range
        return (f"E9 transfer: codes {lo}..{hi}, "
                f"monotonic={self.monotonic}, max conversion "
                f"{1e3 * self.max_conversion_time_s:.2f} ms "
                f"(spec {1e3 * SPEC_MAX_CONVERSION_S:.1f} ms)")


def run(adc: Optional[DualSlopeADC] = None,
        n_points: int = 200) -> TransferResult:
    adc = adc or DualSlopeADC()
    v, codes = transfer_curve(adc, n_points=n_points)
    max_time = 0.0
    all_done = True
    for x in (0.0, adc.cal.full_scale_v / 2, adc.cal.full_scale_v):
        trace = adc.convert(x)
        max_time = max(max_time, trace.conversion_time_s)
        all_done = all_done and trace.completed
    return TransferResult(v_in=v, codes=codes,
                          max_conversion_time_s=max_time,
                          all_completed=all_done)
