"""E1 — the step-input fall-time table ("Analogue test results").

Paper: "The step input macro produced voltage steps of 0, 0.59, 0.96,
1.41, 1.8 and 2.5 volts.  This gave a measured integrator fall time of
2.6, 2.2, 1.9, 1.2, 0.8, and 0.1 msec."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.adc.calibration import PAPER_STEP_TABLE
from repro.adc.dual_slope import DualSlopeADC
from repro.core.digital_monitor import DigitalTestMonitor
from repro.core.step_generator import StepGeneratorMacro


@dataclass
class StepTableResult:
    """Measured vs paper fall times."""

    rows_data: List[Tuple[float, float, float]]  # (step V, measured s, paper s)

    def rows(self) -> List[Tuple[float, float, float]]:
        return self.rows_data

    @property
    def max_abs_error_s(self) -> float:
        return max(abs(m - p) for _, m, p in self.rows_data)

    def monotone_decreasing(self) -> bool:
        times = [m for _, m, _ in self.rows_data]
        return all(a > b for a, b in zip(times, times[1:]))

    def summary(self) -> str:
        lines = ["E1 step fall-time table",
                 "step (V)  measured (ms)  paper (ms)"]
        for v, m, p in self.rows_data:
            lines.append(f"{v:8.2f}  {1e3 * m:13.2f}  {1e3 * p:10.1f}")
        lines.append(f"max |error| = {1e3 * self.max_abs_error_s:.2f} ms")
        return "\n".join(lines)


def run(adc: Optional[DualSlopeADC] = None) -> StepTableResult:
    """Apply the step macro's levels, measure fall times through the
    on-chip counter (10 µs resolution)."""
    adc = adc or DualSlopeADC()
    steps = StepGeneratorMacro()
    monitor = DigitalTestMonitor(clock_hz=adc.cal.clock_hz)
    rows = []
    for i, (level, paper_s) in enumerate(PAPER_STEP_TABLE):
        measured = monitor.quantize(adc.test_fall_time(steps.output(i)))
        rows.append((level, measured, paper_s))
    return StepTableResult(rows_data=rows)
