"""E2 — the ramp test and its gain-error masking caveat.

Paper: "The ramp signal generator varied from 0 to 2.5 volts over a 1 Sec
period, allowing time for 6 measurements at 200 mSec intervals.  If there
was a gain error in the ADC, which was compensated by a gain error in the
ramp input, there will be no indication of an error at the output."

The experiment runs the 6-point ramp measurement on a healthy device,
then demonstrates the caveat: an ADC with a deliberate gain error paired
with a ramp whose gain error compensates it produces the same codes as
the healthy pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.adc.calibration import ADCCalibration
from repro.adc.dual_slope import DualSlopeADC
from repro.core.ramp_generator import RampGeneratorMacro


@dataclass
class RampTestResult:
    nominal_codes: List[int]
    expected_codes: List[int]
    faulty_unmasked_codes: List[int]     # gain-faulted ADC, healthy ramp
    faulty_masked_codes: List[int]       # gain-faulted ADC, compensating ramp
    adc_gain_error: float

    def rows(self) -> List[Tuple[float, int, int, int, int]]:
        points = RampGeneratorMacro().measurement_points(len(self.nominal_codes))
        return [(t, e, n, u, m) for (t, _v), e, n, u, m in zip(
            points, self.expected_codes, self.nominal_codes,
            self.faulty_unmasked_codes, self.faulty_masked_codes)]

    @property
    def unmasked_detected(self) -> bool:
        """Does the healthy ramp expose the ADC gain fault?"""
        return any(abs(u - e) > 1
                   for u, e in zip(self.faulty_unmasked_codes,
                                   self.expected_codes))

    @property
    def masking_occurs(self) -> bool:
        """Does the compensating ramp hide the same fault?"""
        return all(abs(m - n) <= 1
                   for m, n in zip(self.faulty_masked_codes,
                                   self.nominal_codes))

    def summary(self) -> str:
        lines = ["E2 ramp test (codes at 200 ms intervals)",
                 " t(ms)  expected  nominal  faulty  masked"]
        for t, e, n, u, m in self.rows():
            lines.append(f"{1e3 * t:6.0f}  {e:8d}  {n:7d}  {u:6d}  {m:6d}")
        lines.append(f"fault exposed by healthy ramp: {self.unmasked_detected}; "
                     f"masked by compensating ramp: {self.masking_occurs}")
        return "\n".join(lines)


def run(adc: Optional[DualSlopeADC] = None,
        adc_gain_error: float = 0.05) -> RampTestResult:
    """Run the 6-point ramp test, then the masking demonstration.

    ``adc_gain_error`` is the injected fractional gain fault (5 % ≈ 5
    codes at full scale — comfortably detectable by the 6-point check).
    """
    adc = adc or DualSlopeADC()
    ramp = RampGeneratorMacro()
    lsb = adc.cal.lsb_v

    nominal_codes = []
    expected_codes = []
    for t, v in ramp.measurement_points(n=6):
        nominal_codes.append(adc.code_of(v))
        expected_codes.append(min(adc.cal.n_codes, round(
            (ramp.v_start + (ramp.v_stop - ramp.v_start)
             * t / ramp.period_s) / lsb)))

    # A gain-faulted ADC: the de-integrate reference drifted.
    faulty_cal = adc.cal.copy()
    faulty_cal.deintegrate_gain = adc.cal.deintegrate_gain * (1.0 + adc_gain_error)
    faulty_adc = DualSlopeADC(faulty_cal)

    unmasked = [faulty_adc.code_of(v) for _t, v in ramp.measurement_points(6)]

    # The compensating ramp: its slope error exactly cancels the ADC's.
    masked_ramp = RampGeneratorMacro(gain_error=adc_gain_error)
    masked = [faulty_adc.code_of(v) for _t, v in
              masked_ramp.measurement_points(6)]

    return RampTestResult(
        nominal_codes=nominal_codes,
        expected_codes=expected_codes,
        faulty_unmasked_codes=unmasked,
        faulty_masked_codes=masked,
        adc_gain_error=adc_gain_error,
    )
