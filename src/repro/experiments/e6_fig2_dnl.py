"""E6 — Figure 2: the full ADC characterisation against specification.

Paper: "The ADC macro had a specification of: Max Clock rate of 100 kHz,
Zero offset error < 0.3 LSB, Gain error < 0.5 LSB, INL < 1 LSB, and
DNL < 1 LSB.  The results ... gave an overall Gain error of ±0.5 LSB and
a Zero offset error of < 0.2 LSB.  However there was a maximum INL error
value of 1.3 LSB and a maximum DNL error of 1.2 LSB, which is shown in
Figure 2 [DNL vs input code 0 to 100]."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.adc.calibration import (
    PAPER_MEASURED_GAIN_ERROR_LSB,
    PAPER_MEASURED_MAX_DNL_LSB,
    PAPER_MEASURED_MAX_INL_LSB,
    PAPER_MEASURED_OFFSET_LSB,
    SPEC_DNL_LSB,
    SPEC_GAIN_LSB,
    SPEC_INL_LSB,
    SPEC_OFFSET_LSB,
)
from repro.adc.dual_slope import DualSlopeADC
from repro.adc.errors import ADCCharacterization
from repro.adc.histogram import characterize_servo


@dataclass
class Fig2Result:
    characterization: ADCCharacterization

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """(metric, measured, paper-measured, spec) rows."""
        ch = self.characterization
        return [
            ("offset (LSB)", abs(ch.offset_error_lsb),
             PAPER_MEASURED_OFFSET_LSB, SPEC_OFFSET_LSB),
            ("gain (LSB)", abs(ch.gain_error_lsb),
             PAPER_MEASURED_GAIN_ERROR_LSB, SPEC_GAIN_LSB),
            ("max INL (LSB)", ch.max_inl_lsb,
             PAPER_MEASURED_MAX_INL_LSB, SPEC_INL_LSB),
            ("max DNL (LSB)", ch.max_dnl_lsb,
             PAPER_MEASURED_MAX_DNL_LSB, SPEC_DNL_LSB),
        ]

    def dnl_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """Figure 2's plotted series: (code, DNL in LSB)."""
        dnl = self.characterization.dnl_lsb
        return np.arange(1, len(dnl) + 1), dnl

    @property
    def violates_linearity_spec(self) -> bool:
        """The paper's headline: INL and DNL exceed the 1 LSB spec."""
        ch = self.characterization
        return ch.max_inl_lsb > SPEC_INL_LSB and ch.max_dnl_lsb > SPEC_DNL_LSB

    @property
    def offset_gain_in_spec(self) -> bool:
        ch = self.characterization
        return (abs(ch.offset_error_lsb) < SPEC_OFFSET_LSB
                and abs(ch.gain_error_lsb) <= SPEC_GAIN_LSB)

    def summary(self) -> str:
        lines = ["E6 full characterisation (Figure 2)",
                 "metric          measured  paper  spec"]
        for name, meas, paper, spec in self.rows():
            lines.append(f"{name:15s} {meas:8.2f}  {paper:5.1f}  {spec:4.1f}")
        lines.append(f"linearity out of spec (as the paper found): "
                     f"{self.violates_linearity_spec}")
        return "\n".join(lines)


def run(adc: Optional[DualSlopeADC] = None) -> Fig2Result:
    """Servo-characterise the device (the bench 'full manual test')."""
    adc = adc or DualSlopeADC()
    return Fig2Result(characterization=characterize_servo(adc))
