"""E8 — the circuit-2 z-domain design check.

Paper: "In the z domain notation, the integrator was designed for a
response: Vout(z)/Vin(z) = H(z) = z⁻¹ / (6.8 [1 − z⁻¹])" with 5 µs
non-overlapping clocks, 2 ms of simulated operation and a 0.64 V
comparator reference.

The experiment verifies the designed response three ways:

1. analytically — the z-domain model's step response climbs 1/6.8 of the
   input per clock cycle and its pole sits at z = 1;
2. behaviourally — the ADC's integrator sub-macro realises the same
   per-cycle gain;
3. at transistor level — the 15-transistor switched-capacitor netlist
   (circuit 3) is simulated in the MNA engine over a run of clock
   cycles and its per-cycle output step is compared to Vin/6.8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.circuits.sc_integrator import (
    PAPER_DESIGN,
    SCIntegratorDesign,
    sc_integrator_circuit,
)
from repro.lti.zdomain import sc_integrator_ztf
from repro.signals.sources import two_phase_clocks
from repro.spice.transient import transient


@dataclass
class ZDomainResult:
    designed_gain_per_cycle: float
    analytic_gain_per_cycle: float
    transistor_gain_per_cycle: float
    pole_magnitude: float
    transistor_cycles: int

    @property
    def analytic_matches(self) -> bool:
        return abs(self.analytic_gain_per_cycle
                   - self.designed_gain_per_cycle) < 1e-9

    @property
    def transistor_error_fraction(self) -> float:
        return abs(self.transistor_gain_per_cycle
                   - self.designed_gain_per_cycle) \
            / self.designed_gain_per_cycle

    def rows(self):
        return [
            ("designed 1/6.8", self.designed_gain_per_cycle),
            ("z-domain model", self.analytic_gain_per_cycle),
            ("transistor level", self.transistor_gain_per_cycle),
            ("pole |z|", self.pole_magnitude),
        ]

    def summary(self) -> str:
        return ("E8 z-domain check: designed "
                f"{self.designed_gain_per_cycle:.4f} V/V/cycle, analytic "
                f"{self.analytic_gain_per_cycle:.4f}, transistor "
                f"{self.transistor_gain_per_cycle:.4f} "
                f"({100 * self.transistor_error_fraction:.1f}% error over "
                f"{self.transistor_cycles} cycles), pole at |z| = "
                f"{self.pole_magnitude:.4f}")


def run(design: Optional[SCIntegratorDesign] = None,
        n_cycles: int = 12, sim_dt_s: float = 50e-9) -> ZDomainResult:
    """Verify H(z) analytically and at transistor level.

    ``n_cycles`` transistor-level clock cycles are simulated (each 5 µs);
    the default 12 keeps the MNA run short while giving a clean slope
    estimate.
    """
    design = design or PAPER_DESIGN
    ztf = sc_integrator_ztf(cap_ratio=design.cap_ratio,
                            dt=design.clock_period_s)
    step = ztf.step(8)
    analytic_gain = float(step[4] - step[3])
    pole_mag = float(np.max(np.abs(ztf.poles())))

    # Transistor level: the netlist realises the inverting two-switch
    # integrator (−H(z)), so a DC input 0.5 V *below* analogue ground
    # ramps the output upward at +|v_in|/6.8 per cycle.
    v_in_below = 0.5
    duration = n_cycles * design.clock_period_s
    phi1, phi2 = two_phase_clocks(design.clock_period_s, duration,
                                  dt=sim_dt_s, non_overlap=0.1)
    ckt = sc_integrator_circuit(phi1, phi2, design.v_ref - v_in_below,
                                design=design)
    result = transient(ckt, t_stop=duration, dt=sim_dt_s, record=["out"])
    out = result["out"]
    # Sample the output at the end of each clock period and fit the slope.
    samples = []
    for k in range(1, n_cycles + 1):
        samples.append(out.value_at(k * design.clock_period_s
                                    - 2.0 * sim_dt_s))
    samples = np.asarray(samples)
    # skip the first cycles (start-up) and fit per-cycle step
    k = np.arange(len(samples))
    fit = np.polyfit(k[2:], samples[2:], 1)
    transistor_gain = float(fit[0]) / v_in_below

    return ZDomainResult(
        designed_gain_per_cycle=design.gain_per_cycle,
        analytic_gain_per_cycle=analytic_gain,
        transistor_gain_per_cycle=transistor_gain,
        pole_magnitude=pole_mag,
        transistor_cycles=n_cycles,
    )
