"""E7 — Figure 4: detection instances for the faulty circuits.

Paper: 16 faulty variants of circuit 1 (OP1) tested with the PRBS
correlation technique; 12 faulty variants of circuits 2 and 3 (SC
integrator ± comparator) tested with the impulse-response comparison.
"The 3rd circuit of the switch capacitor integrator shows detection
instances of only 70% for some faults.  However, all plots show a
significant number of time instances when detection is likely during
the testing sequence."

Shape targets: every fault in every circuit shows a significant
detection fraction; circuit 3 is the weakest with a dip toward ~70 %;
circuits 1 and 2 sit high in the band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.circuits.op1 import op1_follower
from repro.core.detection import detection_instances
from repro.core.impulse_method import (
    ImpulseMethodConfig,
    circuit2_response,
    extract_integrator_model,
    integrator_impulse_response,
    integrator_opamp_fixture,
)
from repro.core.transient_test import TransientResponseTester, TransientTestConfig
from repro.faults.campaign import CampaignResult, FaultCampaign
from repro.faults.universe import paper_circuit1_faults

#: Circuit-1 stimulus: the paper's PRBS-15 at 250 µs chips.  Levels are
#: 2.0/3.5 V (instead of the paper's 0/5 V) because our 5 µm OP1
#: substitute clips outside roughly 1.6–3.8 V in unity feedback —
#: documented in DESIGN.md under substitutions.
CIRCUIT1_CONFIG = TransientTestConfig(low_v=2.0, high_v=3.5)

#: Detection threshold (relative to the fault-free correlation peak).
CIRCUIT1_REL_THRESHOLD = 0.02
#: Circuit-3 absolute band in volts (the bench comparator's margin; at
#: this margin the slow-drift node-9 fault is caught over ~70 % of the
#: response, reproducing the paper's weakest-case figure).
CIRCUIT3_BAND_V = 0.08
#: Circuit-2 relative band on the correlation of the logic response.
CIRCUIT2_REL_THRESHOLD = 0.03


@dataclass
class Fig4Result:
    circuit1: CampaignResult
    circuit2_detections: List[float]       # percent per fault
    circuit3_detections: List[float]
    fault_names_23: List[str]
    #: circuit-1 campaign root span when the run was observed
    #: (RunResult protocol).
    trace: object = None

    def circuit1_detections(self) -> List[float]:
        return self.circuit1.detection_percentages()

    def series(self) -> Dict[str, List[float]]:
        """Figure 4's three plotted series (percent per faulty circuit)."""
        return {
            "circuit1": self.circuit1_detections(),
            "circuit2": list(self.circuit2_detections),
            "circuit3": list(self.circuit3_detections),
        }

    @property
    def all_detected(self) -> bool:
        threshold = 5.0
        return all(min(s) >= threshold for s in self.series().values() if s)

    @property
    def circuit3_is_weakest(self) -> bool:
        s = self.series()
        return min(s["circuit3"]) <= min(min(s["circuit1"]),
                                         min(s["circuit2"]))

    def summary(self) -> str:
        lines = ["E7 detection instances (Figure 4)"]
        for name, values in self.series().items():
            lines.append(f"{name}: n={len(values)} "
                         f"min={min(values):.0f}% max={max(values):.0f}% "
                         f"mean={np.mean(values):.0f}%")
        if self.circuit1.n_errors:
            lines.append(f"circuit1 simulation errors: "
                         f"{self.circuit1.n_errors}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "fig4_detection",
            "series": self.series(),
            "fault_names_23": list(self.fault_names_23),
            "all_detected": self.all_detected,
            "circuit3_is_weakest": self.circuit3_is_weakest,
            "circuit1_campaign": self.circuit1.to_dict(),
        }

    def report(self) -> str:
        """Terminal report: summary plus the circuit-1 campaign profile."""
        from repro.obs.report import result_report
        return result_report(self)


def run_circuit1(config: TransientTestConfig = CIRCUIT1_CONFIG,
                 rel_threshold: float = CIRCUIT1_REL_THRESHOLD
                 ) -> CampaignResult:
    """The 16-fault PRBS correlation campaign on OP1 (circuit 1)."""
    tester = TransientResponseTester(config)
    campaign = FaultCampaign(
        technique=tester.technique(),
        detector=lambda ref, m: detection_instances(
            ref, m, rel_threshold=rel_threshold),
        threshold=0.05,
    )
    return campaign.run(op1_follower(input_value=2.5),
                        paper_circuit1_faults())


def run_circuits23(config: Optional[ImpulseMethodConfig] = None):
    """The 12-fault impulse-method campaigns on circuits 2 and 3.

    Returns ``(circuit2_percent, circuit3_percent, fault_names)``.
    """
    from repro.faults.injector import inject

    config = config or ImpulseMethodConfig()
    fixture = integrator_opamp_fixture()
    model_ff = extract_integrator_model(fixture, config)
    h_ff = integrator_impulse_response(model_ff, config)
    r2_ff = circuit2_response(model_ff, config)

    c2, c3, names = [], [], []
    for fault in config.paper_faults():
        names.append(fault.describe())
        try:
            model = extract_integrator_model(inject(fixture, fault), config)
            h = integrator_impulse_response(model, config)
            r2 = circuit2_response(model, config)
            c3.append(100.0 * detection_instances(
                h_ff, h, rel_threshold=0.0, noise_sigma=CIRCUIT3_BAND_V / 3.0,
                noise_k=3.0))
            c2.append(100.0 * detection_instances(
                r2_ff, r2, rel_threshold=CIRCUIT2_REL_THRESHOLD))
        except Exception:
            # a netlist that cannot even bias is trivially detected
            c3.append(100.0)
            c2.append(100.0)
    return c2, c3, names


def run(config1: TransientTestConfig = CIRCUIT1_CONFIG,
        config23: Optional[ImpulseMethodConfig] = None) -> Fig4Result:
    """The complete Figure 4 reproduction (all three circuits)."""
    circuit1 = run_circuit1(config1)
    c2, c3, names = run_circuits23(config23)
    return Fig4Result(circuit1=circuit1, circuit2_detections=c2,
                      circuit3_detections=c3, fault_names_23=names,
                      trace=circuit1.trace)
