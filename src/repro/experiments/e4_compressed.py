"""E4 — the compressed test results.

Paper: "The built-in self test macros were configured to perform a quick
functional test of the ADC by compressing the digital output signature
from the consecutive application of the DC step input values. ... This
analogue signature gave expected results on all chips."

Besides the healthy device, the experiment checks that the compressed
test actually rejects broken devices: a stuck control FSM and a dead
integrator must both fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.adc.control import ControlState
from repro.adc.dual_slope import DualSlopeADC
from repro.core.signature import CompressedTest, CompressedTestReport


@dataclass
class CompressedResult:
    healthy: CompressedTestReport
    stuck_control: CompressedTestReport
    dead_integrator: CompressedTestReport

    @property
    def healthy_passes(self) -> bool:
        return self.healthy.passed

    @property
    def faulty_fail(self) -> bool:
        return (not self.stuck_control.passed
                and not self.dead_integrator.passed)

    def rows(self):
        return [
            ("healthy", self.healthy.passed, self.healthy.digital_signature,
             self.healthy.analog_code),
            ("stuck control FSM", self.stuck_control.passed,
             self.stuck_control.digital_signature,
             self.stuck_control.analog_code),
            ("dead integrator", self.dead_integrator.passed,
             self.dead_integrator.digital_signature,
             self.dead_integrator.analog_code),
        ]

    def summary(self) -> str:
        lines = ["E4 compressed test"]
        for name, passed, sig, code in self.rows():
            lines.append(f"{name:18s} sig=0x{sig:04X} analog={code:02b} "
                         f"{'PASS' if passed else 'FAIL'}")
        return "\n".join(lines)


def run(adc: Optional[DualSlopeADC] = None) -> CompressedResult:
    adc = adc or DualSlopeADC()
    test = CompressedTest()

    healthy = test.run(adc)

    stuck = adc.copy()
    stuck.control.stuck_state = ControlState.INTEGRATE
    stuck_report = test.run(stuck)

    dead = adc.copy()
    dead.integrator.enabled = False
    dead_report = test.run(dead)

    return CompressedResult(healthy=healthy, stuck_control=stuck_report,
                            dead_integrator=dead_report)
