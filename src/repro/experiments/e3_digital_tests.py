"""E3 — digital test results.

Paper: "The conversion time for the control logic was specified as a
maximum of 5.6 msec.  The counter macro was run at 100 kHz clock speed as
recommended.  The measured time difference in fall time was 10 µsec.
This represented 10 mV input for each incremented output code change."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.adc.calibration import SPEC_MAX_CONVERSION_S
from repro.adc.dual_slope import DualSlopeADC
from repro.core.digital_monitor import DigitalTestMonitor, DigitalTestReport


@dataclass
class DigitalTestsResult:
    report: DigitalTestReport
    paper_fall_delta_s: float = 10e-6
    paper_mv_per_code: float = 10.0

    def rows(self):
        return [
            ("max conversion time (ms)",
             1e3 * self.report.max_conversion_time_s,
             1e3 * SPEC_MAX_CONVERSION_S),
            ("fall-time delta (us)",
             None if self.report.fall_time_delta_s is None
             else 1e6 * self.report.fall_time_delta_s,
             1e6 * self.paper_fall_delta_s),
            ("mV per code",
             self.report.mv_per_code, self.paper_mv_per_code),
        ]

    @property
    def passed(self) -> bool:
        return self.report.passed

    def summary(self) -> str:
        lines = ["E3 digital tests", self.report.summary()]
        if self.report.mv_per_code is not None:
            lines.append(f"mV per code: {self.report.mv_per_code:.1f} "
                         f"(paper: {self.paper_mv_per_code:.0f})")
        return "\n".join(lines)


def run(adc: Optional[DualSlopeADC] = None) -> DigitalTestsResult:
    adc = adc or DualSlopeADC()
    monitor = DigitalTestMonitor(clock_hz=adc.cal.clock_hz,
                                 conversion_time_limit_s=SPEC_MAX_CONVERSION_S)
    return DigitalTestsResult(report=monitor.run(adc))
