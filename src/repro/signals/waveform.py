"""Uniformly sampled waveform container.

A :class:`Waveform` couples a sample vector with its sampling interval and
start time.  It is the common currency between stimulus generators, the
transient simulator output and the signature/correlation analysis code, so
it carries the small amount of arithmetic (resampling, slicing, algebra)
that the rest of the library would otherwise keep re-implementing.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional, Tuple, Union

import numpy as np

Number = Union[int, float]


class Waveform:
    """A uniformly sampled real-valued signal.

    Parameters
    ----------
    values:
        Sample values.  Stored as a float64 numpy array.
    dt:
        Sampling interval in seconds.  Must be positive.
    t0:
        Time of the first sample (seconds).
    name:
        Optional label carried through operations for reporting.
    """

    __slots__ = ("values", "dt", "t0", "name")

    def __init__(
        self,
        values: Iterable[Number],
        dt: float,
        t0: float = 0.0,
        name: str = "",
    ) -> None:
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                         dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"Waveform values must be 1-D, got shape {arr.shape}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.values = arr
        self.dt = float(dt)
        self.t0 = float(t0)
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    @property
    def times(self) -> np.ndarray:
        """Sample-time vector."""
        return self.t0 + self.dt * np.arange(len(self.values))

    @property
    def duration(self) -> float:
        """Span from the first to the last sample."""
        if len(self.values) == 0:
            return 0.0
        return self.dt * (len(self.values) - 1)

    @property
    def t_end(self) -> float:
        return self.t0 + self.duration

    @property
    def sample_rate(self) -> float:
        return 1.0 / self.dt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (f"Waveform({len(self)} samples, dt={self.dt:g}s, "
                f"t0={self.t0:g}s{label})")

    # ------------------------------------------------------------------
    # Indexing and interpolation
    # ------------------------------------------------------------------
    def __call__(self, t: Union[Number, np.ndarray]) -> Union[float, np.ndarray]:
        """Linearly interpolate the waveform at time(s) ``t``.

        Times outside the sampled span clamp to the end values, which is
        the natural behaviour for a held source driving a circuit.
        """
        t_arr = np.asarray(t, dtype=float)
        result = np.interp(t_arr, self.times, self.values)
        if np.isscalar(t) or t_arr.ndim == 0:
            return float(result)
        return result

    def value_at(self, t: Number) -> float:
        """Scalar interpolation helper (explicit name for readability)."""
        return float(self(float(t)))

    def slice_time(self, t_start: float, t_stop: float) -> "Waveform":
        """Return the sub-waveform for ``t_start <= t <= t_stop``."""
        if t_stop < t_start:
            raise ValueError("t_stop must be >= t_start")
        i0 = max(0, int(math.ceil((t_start - self.t0) / self.dt - 1e-12)))
        i1 = min(len(self.values) - 1,
                 int(math.floor((t_stop - self.t0) / self.dt + 1e-12)))
        if i1 < i0:
            return Waveform(np.empty(0), self.dt, t0=t_start, name=self.name)
        return Waveform(self.values[i0:i1 + 1], self.dt,
                        t0=self.t0 + i0 * self.dt, name=self.name)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _binary(self, other: Union["Waveform", Number],
                op: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> "Waveform":
        if isinstance(other, Waveform):
            if abs(other.dt - self.dt) > 1e-15 * max(self.dt, other.dt):
                raise ValueError("Waveform arithmetic requires matching dt; "
                                 "resample() one of the operands first")
            n = min(len(self), len(other))
            return Waveform(op(self.values[:n], other.values[:n]),
                            self.dt, self.t0, self.name)
        return Waveform(op(self.values, float(other)), self.dt, self.t0, self.name)

    def __add__(self, other: Union["Waveform", Number]) -> "Waveform":
        return self._binary(other, np.add)

    __radd__ = __add__

    def __sub__(self, other: Union["Waveform", Number]) -> "Waveform":
        return self._binary(other, np.subtract)

    def __rsub__(self, other: Number) -> "Waveform":
        return Waveform(float(other) - self.values, self.dt, self.t0, self.name)

    def __mul__(self, other: Union["Waveform", Number]) -> "Waveform":
        return self._binary(other, np.multiply)

    __rmul__ = __mul__

    def __neg__(self) -> "Waveform":
        return Waveform(-self.values, self.dt, self.t0, self.name)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def resample(self, dt: float) -> "Waveform":
        """Resample onto a new uniform grid with interval ``dt``."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        if len(self.values) == 0:
            return Waveform(np.empty(0), dt, self.t0, self.name)
        n = int(math.floor(self.duration / dt + 1e-9)) + 1
        new_times = self.t0 + dt * np.arange(n)
        return Waveform(np.interp(new_times, self.times, self.values),
                        dt, self.t0, self.name)

    def shifted(self, delay: float) -> "Waveform":
        """Return the same samples with the time origin moved by ``delay``."""
        return Waveform(self.values.copy(), self.dt, self.t0 + delay, self.name)

    def clipped(self, lo: float, hi: float) -> "Waveform":
        """Clamp sample values into ``[lo, hi]`` (rail limiting)."""
        if hi < lo:
            raise ValueError("hi must be >= lo")
        return Waveform(np.clip(self.values, lo, hi), self.dt, self.t0, self.name)

    def quantized(self, lsb: float, lo: Optional[float] = None,
                  hi: Optional[float] = None) -> "Waveform":
        """Mid-tread quantisation with step ``lsb``, optional saturation."""
        if lsb <= 0:
            raise ValueError("lsb must be positive")
        q = np.round(self.values / lsb) * lsb
        if lo is not None or hi is not None:
            q = np.clip(q, lo if lo is not None else -np.inf,
                        hi if hi is not None else np.inf)
        return Waveform(q, self.dt, self.t0, self.name)

    def with_noise(self, sigma: float, rng: Optional[np.random.Generator] = None,
                   seed: Optional[int] = None) -> "Waveform":
        """Additive white Gaussian noise with standard deviation ``sigma``."""
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if rng is None:
            rng = np.random.default_rng(seed)
        return Waveform(self.values + rng.normal(0.0, sigma, len(self.values)),
                        self.dt, self.t0, self.name)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def peak(self) -> float:
        """Maximum sample value."""
        self._require_samples()
        return float(np.max(self.values))

    def trough(self) -> float:
        """Minimum sample value."""
        self._require_samples()
        return float(np.min(self.values))

    def mean(self) -> float:
        self._require_samples()
        return float(np.mean(self.values))

    def rms(self) -> float:
        self._require_samples()
        return float(np.sqrt(np.mean(self.values ** 2)))

    def energy(self) -> float:
        """Discrete signal energy ``sum(v**2) * dt``."""
        return float(np.sum(self.values ** 2) * self.dt)

    def crossing_time(self, threshold: float, direction: str = "falling",
                      after: float = -np.inf) -> Optional[float]:
        """Time of the first threshold crossing, linearly interpolated.

        Parameters
        ----------
        threshold:
            Level to detect.
        direction:
            ``"falling"``, ``"rising"`` or ``"either"``.
        after:
            Ignore crossings earlier than this time.

        Returns ``None`` when no crossing occurs.
        """
        if direction not in ("falling", "rising", "either"):
            raise ValueError(f"bad direction {direction!r}")
        v = self.values
        t = self.times
        for i in range(1, len(v)):
            if t[i] < after:
                continue
            falling = v[i - 1] > threshold >= v[i]
            rising = v[i - 1] < threshold <= v[i]
            hit = (direction == "falling" and falling) or \
                  (direction == "rising" and rising) or \
                  (direction == "either" and (falling or rising))
            if hit:
                dv = v[i] - v[i - 1]
                if dv == 0.0:
                    return float(t[i])
                frac = (threshold - v[i - 1]) / dv
                return float(t[i - 1] + frac * self.dt)
        return None

    def settle_time(self, final_value: Optional[float] = None,
                    tolerance: float = 0.01) -> Optional[float]:
        """Time after which the waveform stays within ``tolerance`` (absolute)
        of ``final_value`` (defaults to the last sample)."""
        self._require_samples()
        if final_value is None:
            final_value = float(self.values[-1])
        inside = np.abs(self.values - final_value) <= tolerance
        if not inside[-1]:
            return None
        # last index that is outside the band
        outside = np.nonzero(~inside)[0]
        if len(outside) == 0:
            return float(self.t0)
        idx = outside[-1] + 1
        if idx >= len(self.values):
            return None
        return float(self.times[idx])

    def _require_samples(self) -> None:
        if len(self.values) == 0:
            raise ValueError("empty waveform")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_function(func: Callable[[np.ndarray], np.ndarray], dt: float,
                      duration: float, t0: float = 0.0, name: str = "") -> "Waveform":
        """Sample ``func(t)`` on a uniform grid covering ``duration``."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        n = int(round(duration / dt)) + 1
        t = t0 + dt * np.arange(n)
        return Waveform(np.asarray(func(t), dtype=float), dt, t0, name)

    @staticmethod
    def zeros(n: int, dt: float, t0: float = 0.0, name: str = "") -> "Waveform":
        return Waveform(np.zeros(n), dt, t0, name)

    def copy(self) -> "Waveform":
        return Waveform(self.values.copy(), self.dt, self.t0, self.name)

    def almost_equal(self, other: "Waveform", atol: float = 1e-9) -> bool:
        """Element-wise comparison of equal-length waveforms."""
        return (len(self) == len(other)
                and abs(self.dt - other.dt) <= 1e-15 * max(self.dt, other.dt)
                and bool(np.allclose(self.values, other.values, atol=atol)))

    def stats(self) -> Tuple[float, float, float]:
        """Return ``(min, mean, max)`` in one pass, for reporting."""
        self._require_samples()
        return self.trough(), self.mean(), self.peak()
