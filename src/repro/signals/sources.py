"""Analogue stimulus generators as sampled waveforms.

These mirror the waveform shapes the paper's on-chip macros produce: DC
steps, a slow voltage ramp, pulses, and noise for robustness studies.  The
behavioural on-chip macros in :mod:`repro.core` wrap these with macro
specifications (settling, accuracy, transistor budget); this module is the
pure signal layer.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.signals.waveform import Waveform


def _grid(duration: float, dt: float) -> np.ndarray:
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if dt <= 0:
        raise ValueError("dt must be positive")
    n = int(round(duration / dt)) + 1
    return dt * np.arange(n)


def step_waveform(amplitude: float, duration: float, dt: float,
                  t_step: float = 0.0, baseline: float = 0.0,
                  rise_time: float = 0.0) -> Waveform:
    """A step from ``baseline`` to ``amplitude`` at ``t_step``.

    ``rise_time`` > 0 gives a linear ramp edge, approximating the finite
    slew of a real on-chip step generator.
    """
    t = _grid(duration, dt)
    if rise_time < 0:
        raise ValueError("rise_time must be non-negative")
    if rise_time == 0.0:
        v = np.where(t >= t_step, amplitude, baseline)
    else:
        frac = np.clip((t - t_step) / rise_time, 0.0, 1.0)
        v = baseline + (amplitude - baseline) * frac
    return Waveform(v, dt, name=f"step{amplitude:g}V")


def ramp_waveform(v_start: float, v_stop: float, duration: float, dt: float,
                  hold: float = 0.0) -> Waveform:
    """Linear ramp from ``v_start`` to ``v_stop`` over ``duration`` seconds,
    then held at ``v_stop`` for a further ``hold`` seconds."""
    if duration <= 0:
        raise ValueError("ramp duration must be positive")
    if hold < 0:
        raise ValueError("hold must be non-negative")
    t = _grid(duration + hold, dt)
    frac = np.clip(t / duration, 0.0, 1.0)
    v = v_start + (v_stop - v_start) * frac
    return Waveform(v, dt, name="ramp")


def sine_waveform(amplitude: float, frequency: float, duration: float,
                  dt: float, offset: float = 0.0, phase: float = 0.0) -> Waveform:
    """Sinusoid ``offset + amplitude * sin(2*pi*f*t + phase)``."""
    if frequency <= 0:
        raise ValueError("frequency must be positive")
    t = _grid(duration, dt)
    return Waveform(offset + amplitude * np.sin(2 * np.pi * frequency * t + phase),
                    dt, name=f"sine{frequency:g}Hz")


def pulse_waveform(low: float, high: float, period: float, duty: float,
                   duration: float, dt: float, t_delay: float = 0.0) -> Waveform:
    """Rectangular pulse train (clock-like) with the given duty cycle."""
    if period <= 0:
        raise ValueError("period must be positive")
    if not 0.0 <= duty <= 1.0:
        raise ValueError("duty must lie in [0, 1]")
    t = _grid(duration, dt)
    phase = np.mod(t - t_delay, period)
    v = np.where((t >= t_delay) & (phase < duty * period), high, low)
    return Waveform(v, dt, name="pulse")


def noise_waveform(sigma: float, duration: float, dt: float,
                   mean: float = 0.0, seed: Optional[int] = None) -> Waveform:
    """White Gaussian noise, e.g. the composite noise signal yn(t)."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    rng = np.random.default_rng(seed)
    t = _grid(duration, dt)
    return Waveform(mean + rng.normal(0.0, sigma, len(t)), dt, name="noise")


def staircase_waveform(levels: Sequence[float], dwell: float, dt: float) -> Waveform:
    """Hold each level for ``dwell`` seconds in turn.

    This is the shape the step-input macro produces when the BIST controller
    sequences through its programmed DC levels (the paper applies the step
    values consecutively when forming the compressed signature).
    """
    if len(levels) == 0:
        raise ValueError("levels must be non-empty")
    if dwell <= 0:
        raise ValueError("dwell must be positive")
    samples_per_level = max(1, int(round(dwell / dt)))
    dt = dwell / samples_per_level
    values = np.repeat(np.asarray(levels, dtype=float), samples_per_level)
    return Waveform(values, dt, name="staircase")


def two_phase_clocks(period: float, duration: float, dt: float,
                     high: float = 5.0, low: float = 0.0,
                     non_overlap: float = 0.05) -> tuple:
    """Non-overlapping two-phase clocks for switched-capacitor circuits.

    ``non_overlap`` is the dead-time fraction of the period inserted between
    the phases (both low).  Returns ``(phi1, phi2)`` waveforms.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if not 0.0 <= non_overlap < 0.5:
        raise ValueError("non_overlap must lie in [0, 0.5)")
    t = _grid(duration, dt)
    phase = np.mod(t, period) / period
    gap = non_overlap / 2.0
    phi1 = np.where((phase >= gap) & (phase < 0.5 - gap), high, low)
    phi2 = np.where((phase >= 0.5 + gap) & (phase < 1.0 - gap), high, low)
    return (Waveform(phi1, dt, name="phi1"), Waveform(phi2, dt, name="phi2"))
