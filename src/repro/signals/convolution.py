"""Convolution helpers.

The paper describes the transient response of a composite mixed-signal
path as the stimulus convolved with the impulse response of each block it
propagates through:  ``y(t) = x(t) * h(t) * z(t)``.  These helpers give a
waveform-level convolution plus a least-squares impulse-response estimator
used to validate the correlation route against a direct deconvolution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg

from repro.signals.waveform import Waveform


def convolve_waveforms(x: Waveform, h: Waveform, mode: str = "full") -> Waveform:
    """Discrete approximation of the convolution integral ``x * h``.

    The result is scaled by ``dt`` so it approximates continuous-time
    convolution; both operands must share (or are resampled to) the same
    sample interval.
    """
    if abs(x.dt - h.dt) > 1e-15 * max(x.dt, h.dt):
        h = h.resample(x.dt)
    if len(x) == 0 or len(h) == 0:
        raise ValueError("cannot convolve empty waveforms")
    y = np.convolve(x.values, h.values, mode=mode) * x.dt
    return Waveform(y, x.dt, t0=x.t0 + h.t0, name=f"({x.name}*{h.name})")


def impulse_response_estimate(x: Waveform, y: Waveform, n_taps: int,
                              ridge: float = 1e-9) -> Waveform:
    """Estimate an FIR impulse response h such that ``y ≈ x * h``.

    Solves the regularised least-squares problem over a Toeplitz
    convolution matrix.  This is the deconvolution-based comparison point
    for the paper's correlation technique: with an ideal PRBS both should
    recover the same composite impulse response.

    Parameters
    ----------
    x, y:
        Stimulus and response on the same sample grid.
    n_taps:
        Length of the estimated FIR response.
    ridge:
        Tikhonov regularisation weight (relative to the largest singular
        value scale), keeping the estimate stable for band-limited stimuli.
    """
    if n_taps < 1:
        raise ValueError("n_taps must be >= 1")
    if abs(x.dt - y.dt) > 1e-15 * max(x.dt, y.dt):
        y = y.resample(x.dt)
    n = min(len(x), len(y))
    if n < n_taps:
        raise ValueError(f"need at least n_taps={n_taps} samples, got {n}")
    xv = x.values[:n] - np.mean(x.values[:n])
    yv = y.values[:n] - np.mean(y.values[:n])
    # Build the convolution (design) matrix column by column: column k is
    # x delayed by k samples.
    cols = [np.concatenate([np.zeros(k), xv[:n - k]]) for k in range(n_taps)]
    a = np.stack(cols, axis=1) * x.dt
    ata = a.T @ a
    reg = ridge * np.trace(ata) / n_taps if np.trace(ata) > 0 else ridge
    # The regularised Gram matrix is symmetric positive definite, so the
    # Cholesky route (assume_a="pos") halves the factorisation cost of
    # the general LU solve.
    gram = ata + reg * np.eye(n_taps)
    h = scipy.linalg.solve(gram, a.T @ yv,
                           assume_a="pos" if reg > 0 else "gen")
    return Waveform(h, x.dt, t0=0.0, name="h_est")


def response_of_cascade(x: Waveform, *impulse_responses: Waveform) -> Waveform:
    """Propagate ``x`` through a cascade of blocks given by their impulse
    responses — the ``x * h1 * h2 * ...`` composition from the paper."""
    y = x
    for h in impulse_responses:
        y = convolve_waveforms(y, h)
    return y


def truncate_to(x: Waveform, duration: float) -> Waveform:
    """Keep only the first ``duration`` seconds of a waveform."""
    if duration < 0:
        raise ValueError("duration must be non-negative")
    n = min(len(x), int(round(duration / x.dt)) + 1)
    return Waveform(x.values[:n], x.dt, x.t0, x.name)
