"""Signal toolkit: sampled waveforms, PRBS generation, analogue sources,
convolution and correlation utilities.

This package is the measurement-and-stimulus substrate shared by the
circuit simulator (:mod:`repro.spice`), the behavioural ADC models
(:mod:`repro.adc`) and the transient-response test technique
(:mod:`repro.core.transient_test`).
"""

from repro.signals.waveform import Waveform
from repro.signals.prbs import LFSR, prbs_sequence, prbs_waveform
from repro.signals.sources import (
    step_waveform,
    ramp_waveform,
    sine_waveform,
    pulse_waveform,
    noise_waveform,
    staircase_waveform,
)
from repro.signals.correlation import (
    cross_correlation,
    normalized_cross_correlation,
    autocorrelation,
    correlation_lags,
    fft_correlate,
)
from repro.signals.convolution import convolve_waveforms, impulse_response_estimate
from repro.signals.spectrum import ToneAnalysis, amplitude_spectrum, analyze_tone

__all__ = [
    "Waveform",
    "LFSR",
    "prbs_sequence",
    "prbs_waveform",
    "step_waveform",
    "ramp_waveform",
    "sine_waveform",
    "pulse_waveform",
    "noise_waveform",
    "staircase_waveform",
    "cross_correlation",
    "normalized_cross_correlation",
    "autocorrelation",
    "correlation_lags",
    "fft_correlate",
    "convolve_waveforms",
    "impulse_response_estimate",
    "ToneAnalysis",
    "amplitude_spectrum",
    "analyze_tone",
]
