"""Pseudo-random binary sequence generation.

The paper's transient stimulus is "a pseudo random binary sequence of 15
bits with a step size of 250 µs and amplitude of 0 V or 5 V" — i.e. a
maximal-length sequence from a 4-stage LFSR (2**4 - 1 = 15 chips).  This
module provides the LFSR itself (which on silicon would be the digital
test-pattern-generator macro) and helpers that turn its bit stream into a
:class:`~repro.signals.waveform.Waveform` stimulus.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.signals.waveform import Waveform

#: Feedback tap positions (1-indexed from the output stage) for maximal-length
#: LFSRs.  Taps follow the x^n + x^k + 1 primitive polynomials commonly used
#: in BIST pattern generators.
MAXIMAL_TAPS: Dict[int, Tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    15: (15, 14),
    16: (16, 15, 13, 4),
}


class LFSR:
    """Fibonacci linear-feedback shift register.

    Parameters
    ----------
    order:
        Number of register stages.
    taps:
        Feedback taps, 1-indexed.  Defaults to a maximal-length polynomial
        from :data:`MAXIMAL_TAPS`.
    seed:
        Initial register state as an integer (must be non-zero and fit in
        ``order`` bits).
    """

    def __init__(self, order: int, taps: Optional[Sequence[int]] = None,
                 seed: int = 1) -> None:
        if order < 2:
            raise ValueError("LFSR order must be >= 2")
        if taps is None:
            if order not in MAXIMAL_TAPS:
                raise ValueError(
                    f"no default maximal taps for order {order}; pass taps=")
            taps = MAXIMAL_TAPS[order]
        taps = tuple(sorted(set(int(t) for t in taps), reverse=True))
        if any(t < 1 or t > order for t in taps):
            raise ValueError(f"taps must lie in 1..{order}, got {taps}")
        if seed <= 0 or seed >= (1 << order):
            raise ValueError(f"seed must be in 1..{(1 << order) - 1}")
        self.order = order
        self.taps = taps
        self.state = int(seed)
        self._seed = int(seed)

    @property
    def period(self) -> int:
        """Sequence period for a maximal-length configuration."""
        return (1 << self.order) - 1

    def reset(self) -> None:
        """Return the register to its seed state."""
        self.state = self._seed

    def step(self) -> int:
        """Advance one clock; return the output bit (LSB before the shift).

        Right-shift Fibonacci form: a tap at polynomial position ``t``
        reads register bit ``order - t`` (the LSB is the highest-order
        tap, as in the classic x^16+x^14+x^13+x^11 example where the
        feedback is bits 0, 2, 3 and 5).
        """
        out = self.state & 1
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (self.order - tap)) & 1
        self.state = (self.state >> 1) | (feedback << (self.order - 1))
        return out

    def bits(self, n: int) -> List[int]:
        """Generate the next ``n`` output bits."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return [self.step() for _ in range(n)]

    def states(self, n: int) -> List[int]:
        """Record the register state over ``n`` steps (state *after* each)."""
        result = []
        for _ in range(n):
            self.step()
            result.append(self.state)
        return result


def prbs_sequence(order: int, n_bits: Optional[int] = None,
                  seed: int = 1,
                  taps: Optional[Sequence[int]] = None) -> np.ndarray:
    """Return a PRBS bit array from a maximal-length LFSR.

    ``n_bits`` defaults to one full period (``2**order - 1``).
    """
    lfsr = LFSR(order, taps=taps, seed=seed)
    if n_bits is None:
        n_bits = lfsr.period
    return np.array(lfsr.bits(n_bits), dtype=int)


def prbs_waveform(order: int = 4, chip_time: float = 250e-6,
                  low: float = 0.0, high: float = 5.0,
                  dt: Optional[float] = None, seed: int = 1,
                  n_bits: Optional[int] = None,
                  repeats: int = 1) -> Waveform:
    """Build the paper's PRBS stimulus as a sampled waveform.

    Defaults reproduce the paper's stimulus: a 15-chip sequence
    (order 4), 250 µs per chip, swinging 0 V to 5 V.

    Parameters
    ----------
    order:
        LFSR order; the sequence has ``2**order - 1`` chips per period.
    chip_time:
        Duration each bit is held, in seconds.
    low, high:
        Output levels for bit 0 / bit 1.
    dt:
        Sample interval.  Defaults to ``chip_time / 25`` which resolves
        chip edges comfortably for correlation work.
    seed:
        LFSR seed.
    n_bits:
        Number of chips; defaults to one full period.
    repeats:
        Repeat the chip sequence this many times back to back.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if chip_time <= 0:
        raise ValueError("chip_time must be positive")
    bits = prbs_sequence(order, n_bits=n_bits, seed=seed)
    bits = np.tile(bits, repeats)
    if dt is None:
        dt = chip_time / 25.0
    samples_per_chip = max(1, int(round(chip_time / dt)))
    dt = chip_time / samples_per_chip
    levels = np.where(bits > 0, high, low).astype(float)
    values = np.repeat(levels, samples_per_chip)
    return Waveform(values, dt, name=f"prbs{order}")


def chips_from_waveform(wave: Waveform, chip_time: float,
                        threshold: Optional[float] = None) -> np.ndarray:
    """Recover the chip (bit) sequence from a PRBS-shaped waveform.

    Samples are taken at each chip centre and sliced against ``threshold``
    (defaults to the midpoint of the waveform's range).  Useful for
    verifying that a stimulus survived a signal path.
    """
    if chip_time <= 0:
        raise ValueError("chip_time must be positive")
    if threshold is None:
        threshold = 0.5 * (wave.peak() + wave.trough())
    n_chips = int(round((wave.duration + wave.dt) / chip_time))
    centres = wave.t0 + chip_time * (np.arange(n_chips) + 0.5)
    centres = centres[centres <= wave.t_end]
    return (np.asarray(wave(centres)) > threshold).astype(int)


def balance(bits: Iterable[int]) -> int:
    """Ones minus zeros.  A maximal-length PRBS period balances to +1."""
    total = 0
    count = 0
    for b in bits:
        total += 1 if b else -1
        count += 1
    if count == 0:
        raise ValueError("empty bit sequence")
    return total
