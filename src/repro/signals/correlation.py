"""Correlation utilities for transient-response testing.

The central operation of the paper's technique: correlating the observed
transient response ``y(t)`` with a correlation signal ``p(t)`` derived from
the applied stimulus set.  For a PRBS stimulus (whose autocorrelation
approximates an impulse) the cross-correlation ``R(y, p)`` recovers the
composite impulse response of the signal path, even in the presence of the
composite noise signal ``yn(t)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.signals.waveform import Waveform


def _as_arrays(x, y) -> Tuple[np.ndarray, np.ndarray, float]:
    """Coerce two waveform-or-array operands onto a common sample grid."""
    if isinstance(x, Waveform) and isinstance(y, Waveform):
        if abs(x.dt - y.dt) > 1e-15 * max(x.dt, y.dt):
            y = y.resample(x.dt)
        return x.values, y.values, x.dt
    xv = x.values if isinstance(x, Waveform) else np.asarray(x, dtype=float)
    yv = y.values if isinstance(y, Waveform) else np.asarray(y, dtype=float)
    dt = x.dt if isinstance(x, Waveform) else (y.dt if isinstance(y, Waveform) else 1.0)
    return xv, yv, dt


def correlation_lags(n_x: int, n_y: int) -> np.ndarray:
    """Lag indices matching ``numpy.correlate(x, y, mode="full")`` output."""
    return np.arange(-(n_y - 1), n_x)


#: Above this operand-size product the O(M*N) sliding dot product of
#: ``numpy.correlate`` loses to the O(L log L) FFT route.  The crossover
#: sits around a few tens of thousands of multiply-accumulates; PRBS
#: correlation signatures (thousands of samples each side) are far past it.
FFT_CORR_THRESHOLD = 16384


def fft_correlate(a: np.ndarray, v: np.ndarray, mode: str = "full"
                  ) -> np.ndarray:
    """``numpy.correlate(a, v, mode)`` computed via the FFT.

    Correlation is convolution with the second operand reversed, so the
    full result is ``irfft(rfft(a) * rfft(v[::-1]))`` zero-padded to the
    full length M + N - 1; the ``same``/``valid`` outputs are slices of
    it.  Matches ``numpy.correlate`` to floating-point round-off for all
    three modes and either operand-length ordering.
    """
    a = np.asarray(a, dtype=float)
    v = np.asarray(v, dtype=float)
    m, n = len(a), len(v)
    if m == 0 or n == 0:
        raise ValueError("cannot correlate empty signals")
    l_full = m + n - 1
    nfft = 1 << (l_full - 1).bit_length()
    r_full = np.fft.irfft(np.fft.rfft(a, nfft) * np.fft.rfft(v[::-1], nfft),
                          nfft)[:l_full]
    if mode == "full":
        return r_full
    if mode == "valid":
        start = min(m, n) - 1
        return r_full[start:start + abs(m - n) + 1]
    if mode == "same":
        # numpy returns max(M, N) samples; the slice origin differs
        # between the M >= N and M < N cases (numpy swaps internally).
        length = max(m, n)
        start = (n - 1) // 2 if m >= n else m // 2
        return r_full[start:start + length]
    raise ValueError(f"bad mode {mode!r}")


def _correlate(a: np.ndarray, v: np.ndarray, mode: str) -> np.ndarray:
    """Dispatch to ``numpy.correlate`` or the FFT route on operand size."""
    if len(a) * len(v) >= FFT_CORR_THRESHOLD:
        return fft_correlate(a, v, mode)
    return np.correlate(a, v, mode=mode)


def cross_correlation(y, p, mode: str = "full") -> Waveform:
    """Raw cross-correlation ``R_yp[k] = sum_n y[n+k] * p[n]``.

    Returns a :class:`Waveform` whose time axis is the lag axis (``t0`` at
    the most negative lag), scaled by the sample interval so values
    approximate the continuous-time correlation integral.
    """
    yv, pv, dt = _as_arrays(y, p)
    if len(yv) == 0 or len(pv) == 0:
        raise ValueError("cannot correlate empty signals")
    r = _correlate(yv, pv, mode) * dt
    if mode == "full":
        lag0 = -(len(pv) - 1)
    elif mode == "same":
        lag0 = -(len(r) // 2)
    elif mode == "valid":
        lag0 = 0
    else:
        raise ValueError(f"bad mode {mode!r}")
    return Waveform(r, dt, t0=lag0 * dt, name="R(y,p)")


def normalized_cross_correlation(y, p, mode: str = "full") -> Waveform:
    """Cross-correlation normalised by the signal energies.

    The result lies in [-1, 1]; the paper plots the *normalised*
    cross-correlation between input and output for fault-free and faulty
    circuits.  Mean removal is applied so DC offsets (e.g. a 2.5 V bias)
    do not dominate the correlation shape.
    """
    yv, pv, dt = _as_arrays(y, p)
    if len(yv) == 0 or len(pv) == 0:
        raise ValueError("cannot correlate empty signals")
    yc = yv - np.mean(yv)
    pc = pv - np.mean(pv)
    denom = np.sqrt(np.sum(yc ** 2) * np.sum(pc ** 2))
    if denom == 0.0:
        # A flat (dead) signal correlates to zero everywhere — this is the
        # catastrophically faulty case and must not raise.
        r = np.zeros(len(yc) + len(pc) - 1 if mode == "full" else len(yc))
        lag0 = -(len(pc) - 1) if mode == "full" else -(len(r) // 2)
        return Waveform(r, dt, t0=lag0 * dt, name="NCC(y,p)")
    r = _correlate(yc, pc, mode) / denom
    if mode == "full":
        lag0 = -(len(pc) - 1)
    elif mode == "same":
        lag0 = -(len(r) // 2)
    elif mode == "valid":
        lag0 = 0
    else:
        raise ValueError(f"bad mode {mode!r}")
    return Waveform(r, dt, t0=lag0 * dt, name="NCC(y,p)")


def autocorrelation(x, mode: str = "full") -> Waveform:
    """Autocorrelation ``R_xx``; for a maximal-length PRBS this approximates
    a periodic impulse train, which is why PRBS correlation recovers the
    impulse response."""
    return cross_correlation(x, x, mode=mode)


def correlation_peak(y, p) -> Tuple[float, float]:
    """Return ``(peak_value, peak_lag_seconds)`` of the normalised
    cross-correlation — a compact scalar signature of signal-path health."""
    r = normalized_cross_correlation(y, p)
    idx = int(np.argmax(np.abs(r.values)))
    return float(r.values[idx]), float(r.times[idx])


def whiten(p: Waveform, eps: float = 1e-3) -> Waveform:
    """Spectrally flatten a correlation signal.

    Dividing the spectrum by its magnitude (with regularisation ``eps``)
    turns correlation-with-p into an approximate deconvolution, sharpening
    the recovered impulse response when the stimulus autocorrelation is not
    ideally impulsive.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    spec = np.fft.rfft(p.values - np.mean(p.values))
    mag = np.abs(spec)
    scale = np.max(mag) if np.max(mag) > 0 else 1.0
    flattened = spec / (mag + eps * scale)
    out = np.fft.irfft(flattened, n=len(p.values))
    return Waveform(out, p.dt, p.t0, name=f"whitened({p.name})")
