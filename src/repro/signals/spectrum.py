"""Spectral analysis helpers.

A small, dependable FFT layer for the dynamic tests: windowed amplitude
spectra, single-tone power accounting (fundamental / harmonics / noise),
THD and SFDR.  Everything works on :class:`~repro.signals.waveform.Waveform`
or plain arrays with an explicit sample rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.signals.waveform import Waveform

_WINDOWS = {
    "rect": lambda n: np.ones(n),
    "hann": np.hanning,
    "hamming": np.hamming,
    "blackman": np.blackman,
}


def amplitude_spectrum(signal: Union[Waveform, Sequence[float]],
                       sample_rate_hz: Optional[float] = None,
                       window: str = "hann"
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Single-sided amplitude spectrum, window-gain corrected.

    Returns ``(frequencies_hz, amplitudes)`` where a full-scale sine of
    amplitude A shows a peak of ~A at its frequency.
    """
    if isinstance(signal, Waveform):
        values = signal.values
        rate = signal.sample_rate
    else:
        values = np.asarray(signal, dtype=float)
        if sample_rate_hz is None:
            raise ValueError("sample_rate_hz required for raw arrays")
        rate = sample_rate_hz
    n = len(values)
    if n < 8:
        raise ValueError("need at least 8 samples")
    if window not in _WINDOWS:
        raise ValueError(f"unknown window {window!r}; "
                         f"choose from {sorted(_WINDOWS)}")
    w = _WINDOWS[window](n)
    coherent_gain = np.sum(w) / n
    spec = np.fft.rfft((values - np.mean(values)) * w)
    amps = 2.0 * np.abs(spec) / (n * coherent_gain)
    freqs = np.fft.rfftfreq(n, d=1.0 / rate)
    return freqs, amps


@dataclass
class ToneAnalysis:
    """Power accounting of a single-tone capture."""

    fundamental_hz: float
    fundamental_amplitude: float
    harmonics: Tuple[Tuple[int, float], ...]   # (order, amplitude)
    noise_rms: float

    @property
    def thd_fraction(self) -> float:
        """Total harmonic distortion as an amplitude ratio."""
        if self.fundamental_amplitude <= 0:
            return float("inf")
        harm_power = sum(a * a for _, a in self.harmonics)
        return float(np.sqrt(harm_power) / self.fundamental_amplitude)

    @property
    def thd_db(self) -> float:
        ratio = self.thd_fraction
        if ratio <= 0:
            return float("-inf")
        return 20.0 * np.log10(ratio)

    @property
    def sfdr_db(self) -> float:
        """Spurious-free dynamic range against the worst harmonic."""
        if not self.harmonics or self.fundamental_amplitude <= 0:
            return float("inf")
        worst = max(a for _, a in self.harmonics)
        if worst <= 0:
            return float("inf")
        return 20.0 * np.log10(self.fundamental_amplitude / worst)

    def summary(self) -> str:
        return (f"tone {self.fundamental_hz:g} Hz, amplitude "
                f"{self.fundamental_amplitude:.4g}, THD {self.thd_db:.1f} dB, "
                f"SFDR {self.sfdr_db:.1f} dB")


def analyze_tone(signal: Union[Waveform, Sequence[float]],
                 fundamental_hz: float,
                 sample_rate_hz: Optional[float] = None,
                 n_harmonics: int = 5,
                 window: str = "hann",
                 bin_halfwidth: int = 2) -> ToneAnalysis:
    """Account a capture's power into fundamental, harmonics and noise.

    Each component's amplitude is taken as the peak within
    ``±bin_halfwidth`` bins of its nominal frequency (tolerating slight
    incoherence under the window's leakage skirt).
    """
    if fundamental_hz <= 0:
        raise ValueError("fundamental must be positive")
    if n_harmonics < 1:
        raise ValueError("n_harmonics must be >= 1")
    freqs, amps = amplitude_spectrum(signal, sample_rate_hz, window=window)
    df = freqs[1] - freqs[0]

    def peak_near(f0: float) -> float:
        idx = int(round(f0 / df))
        lo = max(0, idx - bin_halfwidth)
        hi = min(len(amps), idx + bin_halfwidth + 1)
        if lo >= hi:
            return 0.0
        return float(np.max(amps[lo:hi]))

    nyquist = freqs[-1]
    fundamental = peak_near(fundamental_hz)
    harmonics = []
    for order in range(2, n_harmonics + 2):
        f_h = order * fundamental_hz
        if f_h >= nyquist:
            break
        harmonics.append((order, peak_near(f_h)))

    # Noise: the time-domain residual after a least-squares fit of the
    # fundamental and the accounted harmonics (exact, unlike spectral
    # power bookkeeping under a window).
    if isinstance(signal, Waveform):
        values = signal.values
        rate = signal.sample_rate
    else:
        values = np.asarray(signal, dtype=float)
        rate = float(sample_rate_hz)
    t = np.arange(len(values)) / rate
    columns = [np.ones_like(t)]
    for order in [1] + [o for o, _ in harmonics]:
        w0 = 2.0 * np.pi * order * fundamental_hz
        columns.append(np.cos(w0 * t))
        columns.append(np.sin(w0 * t))
    basis = np.stack(columns, axis=1)
    coeffs, *_ = np.linalg.lstsq(basis, values, rcond=None)
    residual = values - basis @ coeffs
    noise_rms = float(np.sqrt(np.mean(residual ** 2)))
    return ToneAnalysis(fundamental_hz=fundamental_hz,
                        fundamental_amplitude=fundamental,
                        harmonics=tuple(harmonics),
                        noise_rms=noise_rms)
