"""Content-addressed fault-outcome cache: never simulate twice.

Every :class:`~repro.faults.campaign.FaultOutcome` is addressed by a
SHA-256 over (technique, detector, target, error policy, per-fault
budget, fault) — the checkpoint layer's content-key machinery
(:func:`repro.resilience.checkpoint.fault_context_key`) applied at
per-fault granularity.  The detection *threshold* is deliberately not
part of the key: a cached entry stores the raw detection score and the
``detected`` verdict is re-derived against the requesting campaign's
threshold on every hit, so campaigns that differ only in threshold
share one set of simulations.

Two tiers:

* an in-memory LRU (``max_memory_entries``, default 4096) for the hot
  path — repeated experiment/bench runs inside one process;
* an optional disk tier (``path=``): one JSON document per entry,
  sharded into 256 prefix directories, written atomically (temp file in
  the same directory + fsync + ``os.replace``) exactly like campaign
  checkpoints, so a kill mid-write can never tear an entry.

A disk entry that fails to parse, carries an unknown schema or does not
match its own key is *quarantined* — renamed to ``<entry>.corrupt`` —
counted in :attr:`CacheStats.corrupt` and treated as a miss, so cache
corruption degrades to recomputation, never to a crash or a wrong
result.

Infrastructure verdicts are never cached: a timeout says something
about the machine that ran the fault and a quarantined poison pill says
something about a worker process, so both always re-evaluate.
Deterministic verdicts — detections, misses and simulation errors under
a fixed error policy — are cached, including the outcome's recorded
wall time, which is what makes a warm re-run's ``to_dict()`` payload
identical to the cold run that populated it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs.core import OBS

#: on-disk entry schema tag; bump on incompatible layout changes.
CACHE_SCHEMA = "repro.result-cache/1"


def fault_key(context_key: str, fault: Any) -> str:
    """Address of one fault's outcome under an evaluation context."""
    h = hashlib.sha256()
    for part in (CACHE_SCHEMA, context_key, fault.describe()):
        h.update(part.encode("utf-8", "replace"))
        h.update(b"\x00")
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0
    disk_hits: int = 0
    #: bytes reclaimed from the disk tier by LRU eviction/scrub.
    evicted_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions,
                "corrupt": self.corrupt, "disk_hits": self.disk_hits,
                "evicted_bytes": self.evicted_bytes,
                "hit_rate": self.hit_rate}

    def snapshot(self) -> "CacheStats":
        """Immutable copy, for before/after accounting."""
        return CacheStats(self.hits, self.misses, self.stores,
                          self.evictions, self.corrupt, self.disk_hits,
                          self.evicted_bytes)

    def delta(self, since: "CacheStats") -> "CacheStats":
        """What this run contributed: current minus a prior snapshot.

        A shared cache serves many runs; ``CampaignResult.cache_stats``
        must describe *this* run's hits, not the cache's lifetime."""
        return CacheStats(self.hits - since.hits,
                          self.misses - since.misses,
                          self.stores - since.stores,
                          self.evictions - since.evictions,
                          self.corrupt - since.corrupt,
                          self.disk_hits - since.disk_hits,
                          self.evicted_bytes - since.evicted_bytes)

    def describe(self) -> str:
        reclaimed = (f", {self.evicted_bytes} B reclaimed"
                     if self.evicted_bytes else "")
        return (f"cache: {self.hits}/{self.lookups} hits "
                f"({100.0 * self.hit_rate:.0f}%, {self.disk_hits} disk), "
                f"{self.stores} stores, "
                f"{self.corrupt} corrupt, {self.evictions} evicted"
                f"{reclaimed}")


class ResultCache:
    """Two-tier content-addressed store of fault outcomes.

    Parameters
    ----------
    path:
        Directory for the disk tier (created on first store).  ``None``
        keeps the cache purely in memory.
    max_memory_entries:
        LRU capacity of the memory tier.
    max_bytes:
        Byte budget for the disk tier (``None`` = unbounded, the
        historical behaviour).  Enforced *synchronously*: every store
        that pushes the tier over budget immediately evicts
        least-recently-used entries (by mtime — disk hits ``utime`` the
        entry, so recency survives process restarts) until the tier is
        back under, so the on-disk footprint never exceeds the budget
        between two calls.  Reclaimed bytes are counted in
        :attr:`CacheStats.evicted_bytes` and the ``cache.evicted_bytes``
        observability counter.

    The cache is safe to share between a session's foreground runs and
    a :class:`~repro.service.scheduler.CampaignScheduler`'s dispatcher
    thread — all tier state is guarded by one lock.  Only the campaign
    *parent* process touches the cache (lookups happen before dispatch,
    stores when outcomes are recorded), so worker processes never need
    a handle.
    """

    def __init__(self, path: Optional[str] = None,
                 max_memory_entries: int = 4096,
                 max_bytes: Optional[int] = None) -> None:
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if max_bytes is not None and path is None:
            raise ValueError("max_bytes requires a disk tier (path=)")
        self.path = None if path is None else os.fspath(path)
        self.max_memory_entries = max_memory_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        #: tracked on-disk footprint; measured once here, then
        #: maintained incrementally by store/evict (scrub re-measures).
        self._disk_bytes = self._measure_disk() if max_bytes else 0

    # ------------------------------------------------------------------
    def key(self, context_key: str, fault: Any) -> str:
        return fault_key(context_key, fault)

    def get(self, context_key: str, fault: Any, threshold: float,
            count_miss: bool = True) -> Optional[Any]:
        """The cached :class:`FaultOutcome` for ``fault`` under
        ``context_key``, re-thresholded, or ``None`` on a miss.

        ``count_miss=False`` makes a miss free in the accounting — used
        by the scheduler's dispatch-time recheck, which probes faults
        already counted as misses at admission in case a concurrent job
        computed them meanwhile."""
        key = fault_key(context_key, fault)
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
            else:
                entry = self._load_disk(key)
                if entry is not None:
                    self.stats.disk_hits += 1
                    self._remember(key, entry)
            if entry is None:
                if count_miss:
                    self.stats.misses += 1
                    if OBS.enabled:
                        OBS.metrics.counter("cache.misses").inc()
                return None
            self.stats.hits += 1
        if OBS.enabled:
            OBS.metrics.counter("cache.hits").inc()
        return self._rebuild(entry, fault, threshold)

    def put(self, context_key: str, outcome: Any) -> bool:
        """Store a freshly computed outcome; returns False for
        infrastructure verdicts (timeouts, quarantines), which are
        never cached."""
        if outcome.timed_out or outcome.quarantined:
            return False
        key = fault_key(context_key, outcome.fault)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "fault": outcome.fault.describe(),
            "detection": float(outcome.detection),
            "detected": bool(outcome.detected),
            "error": outcome.error,
            "elapsed_s": float(outcome.elapsed_s),
        }
        # conditional so historical entries (and their hashes) keep
        # their shape; absent means "transient"
        if outcome.decided_by != "transient":
            entry["decided_by"] = outcome.decided_by
        with self._lock:
            self._remember(key, entry)
            if self.path is not None:
                # the disk tier is an optimisation: a full disk or a
                # failed rename degrades to memory-only, never fails
                # the campaign that computed the outcome
                try:
                    self._store_disk(key, entry)
                    if self.max_bytes is not None:
                        self._evict_disk(keep=key)
                except OSError:
                    if OBS.enabled:
                        OBS.metrics.counter("cache.store_errors").inc()
            self.stats.stores += 1
        if OBS.enabled:
            OBS.metrics.counter("cache.stores").inc()
        return True

    def clear(self) -> None:
        """Drop the memory tier (disk entries are left in place)."""
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tier = self.path if self.path is not None else "memory-only"
        return (f"ResultCache({tier!r}, {len(self._memory)} in memory, "
                f"{self.stats.describe()})")

    # -- memory tier ---------------------------------------------------
    def _remember(self, key: str, entry: Dict[str, Any]) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            if OBS.enabled:
                OBS.metrics.counter("cache.evictions").inc()

    # -- disk tier -----------------------------------------------------
    def _entry_path(self, key: str) -> str:
        return os.path.join(self.path, key[:2], key + ".json")

    def _store_disk(self, key: str, entry: Dict[str, Any]) -> None:
        target = self._entry_path(key)
        directory = os.path.dirname(target)
        os.makedirs(directory, exist_ok=True)
        old = 0
        if self.max_bytes is not None:
            try:
                old = os.path.getsize(target)
            except OSError:
                old = 0
        fd, tmp = tempfile.mkstemp(prefix=".cache-", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
                fh.flush()
                os.fsync(fh.fileno())
            new = os.path.getsize(tmp)
            os.replace(tmp, target)
            if self.max_bytes is not None:
                self._disk_bytes += new - old
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _load_disk(self, key: str) -> Optional[Dict[str, Any]]:
        if self.path is None:
            return None
        target = self._entry_path(key)
        if not os.path.exists(target):
            return None
        try:
            with open(target, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if (not isinstance(entry, dict)
                    or entry.get("schema") != CACHE_SCHEMA
                    or entry.get("key") != key
                    or not isinstance(entry.get("detection"), float)
                    or not isinstance(entry.get("elapsed_s"), float)):
                raise ValueError("malformed cache entry")
        except Exception:  # noqa: BLE001 - any corruption -> quarantine
            self._quarantine(target)
            return None
        try:
            # refresh mtime so LRU recency survives process restarts
            os.utime(target)
        except OSError:  # pragma: no cover - racing eviction is fine
            pass
        return entry

    def _quarantine(self, target: str) -> None:
        """Move a corrupt entry aside so it is inspectable but never
        consulted again; recomputation repopulates the slot."""
        self.stats.corrupt += 1
        if OBS.enabled:
            OBS.metrics.counter("cache.corrupt").inc()
        try:
            os.replace(target, target + ".corrupt")
        except OSError:  # pragma: no cover - racing cleanup is fine
            pass

    # -- disk budget ---------------------------------------------------
    def _entries_on_disk(self):
        """(mtime, size, path, key) for every entry file, oldest first.
        Quarantine leftovers (``.corrupt``) and torn temp files are not
        entries and don't count against the budget."""
        found = []
        if self.path is None or not os.path.isdir(self.path):
            return found
        for shard in os.scandir(self.path):
            if not shard.is_dir():
                continue
            try:
                files = list(os.scandir(shard.path))
            except OSError:  # pragma: no cover - racing removal
                continue
            for item in files:
                if not item.name.endswith(".json"):
                    continue
                try:
                    stat = item.stat()
                except OSError:  # pragma: no cover - racing removal
                    continue
                found.append((stat.st_mtime, stat.st_size, item.path,
                              item.name[:-len(".json")]))
        found.sort()
        return found

    def _measure_disk(self) -> int:
        return sum(size for _, size, _, _ in self._entries_on_disk())

    def _evict_disk(self, keep: Optional[str] = None) -> int:
        """Delete least-recently-used entries until the tier fits
        ``max_bytes`` (callers hold the lock).  ``keep`` shields the
        entry just written — the newest data must never be the victim
        of its own store.  Returns bytes reclaimed."""
        if self.max_bytes is None or self._disk_bytes <= self.max_bytes:
            return 0
        reclaimed = 0
        for _, size, entry_path, key in self._entries_on_disk():
            if self._disk_bytes <= self.max_bytes:
                break
            if key == keep:
                continue
            try:
                os.unlink(entry_path)
            except OSError:  # pragma: no cover - racing removal
                continue
            self._disk_bytes -= size
            reclaimed += size
            self.stats.evictions += 1
            self.stats.evicted_bytes += size
            if OBS.enabled:
                OBS.metrics.counter("cache.evictions").inc()
                OBS.metrics.counter("cache.evicted_bytes").inc(size)
        return reclaimed

    def disk_bytes(self) -> int:
        """Current measured on-disk footprint of the entry files."""
        with self._lock:
            return self._measure_disk()

    def scrub(self) -> Dict[str, int]:
        """One atomic maintenance pass over the disk tier.

        Validates every entry the way a lookup would — parseable JSON,
        known schema, *key matches the filename*, float detection and
        wall-time fields — quarantining mismatches to ``.corrupt``;
        then re-measures the tier and evicts down to ``max_bytes`` if a
        budget is set.  Each individual action is an atomic rename or
        unlink, so a crash mid-scrub leaves every entry either intact
        or cleanly quarantined, never torn.
        """
        quarantined = 0
        with self._lock:
            for _, _, entry_path, key in self._entries_on_disk():
                try:
                    with open(entry_path, "r", encoding="utf-8") as fh:
                        entry = json.load(fh)
                    if (not isinstance(entry, dict)
                            or entry.get("schema") != CACHE_SCHEMA
                            or entry.get("key") != key
                            or not isinstance(entry.get("detection"),
                                              float)
                            or not isinstance(entry.get("elapsed_s"),
                                              float)):
                        raise ValueError("malformed cache entry")
                except Exception:  # noqa: BLE001 - any damage aside
                    self._quarantine(entry_path)
                    quarantined += 1
            self._disk_bytes = self._measure_disk()
            evicted_bytes = self._evict_disk()
            report = {
                "entries": len(self._entries_on_disk()),
                "bytes": self._disk_bytes,
                "quarantined": quarantined,
                "evicted_bytes": evicted_bytes,
            }
        if OBS.enabled:
            OBS.events.emit("cache.scrub", **report)
        return report

    # -- outcome reconstruction ----------------------------------------
    @staticmethod
    def _rebuild(entry: Dict[str, Any], fault: Any, threshold: float) -> Any:
        from repro.faults.campaign import FaultOutcome
        detection = float(entry["detection"])
        error = entry.get("error")
        # non-error verdicts re-threshold against the requesting
        # campaign; errored outcomes keep the verdict their (key-bound)
        # error policy assigned
        detected = (bool(entry["detected"]) if error is not None
                    else detection >= threshold)
        return FaultOutcome(fault=fault, detection=detection,
                            detected=detected, error=error,
                            elapsed_s=float(entry["elapsed_s"]),
                            from_cache=True,
                            decided_by=entry.get("decided_by",
                                                 "transient"))


__all__ = ["ResultCache", "CacheStats", "fault_key", "CACHE_SCHEMA"]
