"""``python -m repro.service`` — operating a durable campaign service.

Subcommands
-----------
``queue``
    Inspect and repair a persistent job queue journal
    (:mod:`repro.service.queue`): ``list`` one line per journaled job
    with state/priority/seq, ``requeue`` puts a failed or stuck job
    back in line for the next recovery, ``drop`` retires a job so no
    replay resurrects it, ``compact`` rewrites the journal keeping only
    live jobs.
``cache``
    Operate a :class:`~repro.service.cache.ResultCache` disk tier:
    ``stats`` reports entry count and on-disk footprint, ``scrub`` runs
    the validation/eviction maintenance pass (quarantines corrupt or
    key-mismatched entries, then evicts LRU down to ``--max-bytes`` if
    given).
"""

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Durable campaign-service operations "
                    "(job queue journal + result cache disk tier).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_queue = sub.add_parser(
        "queue", help="inspect/repair a persistent job queue journal")
    p_queue.add_argument("action",
                         choices=("list", "requeue", "drop", "compact"),
                         help="list jobs / requeue one / drop one / "
                              "compact the journal")
    p_queue.add_argument("path", help="queue journal (JSONL)")
    p_queue.add_argument("job", nargs="?", default=None,
                         help="job id (required for requeue/drop)")

    p_cache = sub.add_parser(
        "cache", help="operate a result-cache disk tier")
    p_cache.add_argument("action", choices=("stats", "scrub"),
                         help="report footprint / run the "
                              "validation+eviction pass")
    p_cache.add_argument("path", help="cache directory")
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         metavar="N",
                         help="byte budget to evict down to during "
                              "scrub (default: no eviction)")

    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    if args.command == "queue":
        from repro.service.queue import PersistentJobQueue
        queue = PersistentJobQueue(args.path)
        if args.action == "list":
            print(queue.describe())
            return 0
        if args.action == "compact":
            dropped = queue.compact()
            print(f"compacted: dropped {dropped} settled job(s), "
                  f"{queue.depth()} live")
            return 0
        if args.job is None:
            print(f"queue {args.action}: job id required", file=sys.stderr)
            return 2
        ok = (queue.requeue(args.job) if args.action == "requeue"
              else queue.drop(args.job))
        if not ok:
            print(f"queue {args.action}: unknown job {args.job!r}",
                  file=sys.stderr)
            return 1
        print(f"{args.action}d {args.job}")
        return 0

    if args.command == "cache":
        from repro.service.cache import ResultCache
        cache = ResultCache(path=args.path, max_bytes=args.max_bytes)
        if args.action == "stats":
            entries = cache._entries_on_disk()
            print(json.dumps({
                "path": cache.path,
                "entries": len(entries),
                "bytes": sum(size for _, size, _, _ in entries),
                "max_bytes": cache.max_bytes,
            }, indent=2))
            return 0
        report = cache.scrub()
        report["path"] = cache.path
        print(json.dumps(report, indent=2))
        # quarantines are worth a non-zero exit so cron jobs notice
        return 1 if report["quarantined"] else 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    raise SystemExit(main())
