"""Campaign-as-a-service: job scheduling + content-addressed caching.

The service layer turns one-shot :class:`~repro.faults.campaign.
FaultCampaign` runs into submitted **jobs**:

* :class:`~repro.service.spec.CampaignSpec` — one frozen description
  of a campaign (workload + every execution/resilience option), shared
  by ``FaultCampaign.run(spec=...)`` and the scheduler, and hashed into
  the campaign content key;
* :class:`~repro.service.cache.ResultCache` — a two-tier (LRU memory +
  atomic-write disk) content-addressed store of per-fault outcomes, so
  no fault is ever simulated twice — across campaigns, runs and
  processes;
* :class:`~repro.service.scheduler.CampaignScheduler` — an asyncio
  dispatcher sharding submitted fault universes across a shared worker
  pool with priority and fair share, composing with deadlines, retry,
  checkpointing, poison-pill quarantine and the cache;
* :class:`~repro.service.queue.PersistentJobQueue` — a write-ahead
  JSONL journal of accepted jobs and their state transitions, so a
  SIGKILLed scheduler recovers every undone job on restart
  (``CampaignScheduler(queue=...)`` / ``Session(queue_path=...)``).
"""

from repro.service.cache import CACHE_SCHEMA, CacheStats, ResultCache, \
    fault_key
from repro.service.queue import JobRecord, PersistentJobQueue, QueueError, \
    QUEUE_SCHEMA
from repro.service.spec import DEFAULTS, SPEC_SCHEMA, CampaignSpec

#: scheduler classes resolve lazily (PEP 562): the scheduler module
#: imports the campaign layer, which itself imports
#: :mod:`repro.service.spec` — loading it here eagerly would close an
#: import cycle through this package's __init__.
_LAZY = ("CampaignScheduler", "CampaignJob", "JobState")


def __getattr__(name: str):
    if name in _LAZY:
        from repro.service import scheduler
        return getattr(scheduler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    "CampaignSpec",
    "DEFAULTS",
    "SPEC_SCHEMA",
    "ResultCache",
    "CacheStats",
    "fault_key",
    "CACHE_SCHEMA",
    "PersistentJobQueue",
    "JobRecord",
    "QueueError",
    "QUEUE_SCHEMA",
    "CampaignScheduler",
    "CampaignJob",
    "JobState",
]
