"""Campaign-as-a-service: the asyncio job scheduler.

One process, many concurrent campaigns: :class:`CampaignScheduler`
accepts :class:`~repro.service.spec.CampaignSpec` jobs, shards each
job's fault universe, and dispatches shards onto a shared worker pool
with **priority** (higher first) and **fair share** (among equal
priorities, the job with the smallest dispatched fraction of its
universe goes next — a small campaign is never starved behind a huge
one).  The dispatcher is a single asyncio task on a dedicated
background thread, so ``submit()`` returns immediately and the calling
thread blocks only where it chooses to (``job.result()`` /
``gather()``).

Everything an offline campaign guarantees carries over, because the
scheduler reuses the very same per-fault evaluation functions
(:func:`repro.faults.campaign._evaluate_fault` and friends):

* outcomes are recorded **in fault order** per job, so progress
  callbacks, heartbeats and checkpoints see the serial sequence;
* per-fault deadlines cancel cooperatively inside workers, and a shard
  that blows past its budget is hard-killed with the pool, its faults
  re-dispatched individually and the unresponsive one recorded as a
  structured timeout;
* a fault that kills its worker twice is quarantined as a poison pill
  (innocent shard-mates are re-dispatched and exonerated);
* ``spec.checkpoint``/``resume`` and a shared
  :class:`~repro.service.cache.ResultCache` short-circuit any fault
  ever computed — across jobs, runs and processes.

Results are ordinary :class:`~repro.faults.campaign.CampaignResult`
objects, ``to_dict()``-identical (timing aside) to a standalone serial
run of the same spec.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import enum
import functools
import itertools
import os
import pickle
import re
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import CampaignError
from repro.faults.campaign import (
    CampaignResult,
    FaultOutcome,
    _QUARANTINE_AFTER,
    _evaluate_fault,
    _evaluate_fault_batch,
    _graft_spans,
    _quarantine_outcome,
    _timeout_outcome,
)
from repro.obs.core import OBS, event
from repro.obs.core import span as obs_span
from repro.obs.health import ProgressTracker, ServiceProgress
from repro.obs.trace import Span, TraceContext
from repro.resilience.checkpoint import CampaignCheckpoint
from repro.resilience.failure import FailureReport
from repro.service.cache import ResultCache
from repro.service.queue import JobRecord, PersistentJobQueue
from repro.service.spec import CampaignSpec

#: default shard size for techniques without a batched path: big enough
#: to amortise dispatch, small enough that fair-share interleaving is
#: visible between concurrent jobs.
DEFAULT_SHARD_SIZE = 4


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class CampaignJob:
    """Handle for one submitted campaign.

    ``result()`` blocks until the scheduler finishes the job and
    returns its :class:`~repro.faults.campaign.CampaignResult` (or
    raises the job's error); ``done()``/``state`` never block.
    """

    def __init__(self, job_id: str, spec: CampaignSpec,
                 priority: int) -> None:
        self.id = job_id
        self.spec = spec
        self.priority = priority
        self.state = JobState.PENDING
        self.cancel_requested = False
        #: trace context captured at submit time on the *submitting*
        #: thread, so the job's spans join the submitter's trace even
        #: though dispatch happens on the scheduler thread (where the
        #: submitter's observe() scope may not be ambient).
        self.trace_ctx: Optional[TraceContext] = None
        #: run ledger captured at submit time (same scope race).
        self.ledger: Any = None
        #: original scheduler admission seq when this job was rebuilt
        #: from the persistent queue (None for fresh submissions).
        self.recovered_seq: Optional[int] = None
        #: ``(result, job_span)`` parked by the dispatcher when the job
        #: finalised while no observation scope was ambient (the
        #: submitter may be inside ``Session.watch()``); the first
        #: ``result()`` call that runs under an enabled scope drains it
        #: so the job span still joins the gatherer's trace.
        self._pending_obs: Optional[tuple] = None
        self._obs_lock = threading.Lock()
        self._future: "concurrent.futures.Future[CampaignResult]" = \
            concurrent.futures.Future()

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> CampaignResult:
        result = self._future.result(timeout)
        self._drain_obs()
        return result

    def _drain_obs(self) -> None:
        if self._pending_obs is None or not OBS.enabled:
            return
        with self._obs_lock:
            pending, self._pending_obs = self._pending_obs, None
        if pending is None:
            return
        result, job_span = pending
        CampaignScheduler._merge_obs(result)
        if job_span is not None:
            OBS.tracer.spans.append(job_span)

    def exception(self, timeout: Optional[float] = None):
        return self._future.exception(timeout)

    def cancel(self) -> None:
        """Ask the scheduler to abandon the job at the next shard
        boundary (best effort; a completed job is unaffected)."""
        self.cancel_requested = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CampaignJob({self.id!r}, {self.state.value}, "
                f"priority={self.priority})")


@dataclass
class _Shard:
    """One dispatchable unit: a reference computation or a fault chunk."""

    kind: str                    # "ref" | "faults"
    indices: List[int] = field(default_factory=list)
    #: open dispatch span while the shard is in flight (None when the
    #: job is untraced); detached from any tracer until grafted.
    span: Any = field(default=None, compare=False)


class _JobRun:
    """Dispatcher-side state for one admitted job."""

    def __init__(self, job: CampaignJob, seq: int) -> None:
        self.job = job
        self.seq = seq
        self.spec = job.spec
        self.fault_list: List[Any] = list(job.spec.faults)
        self.total = len(self.fault_list)
        self.failures = FailureReport()
        self.outcomes: Dict[int, FaultOutcome] = {}
        self.buffered: Dict[int, FaultOutcome] = {}
        self.emit_queue: Deque[int] = deque()
        self.ready: Deque[_Shard] = deque()
        self.inflight = 0
        self.dispatched = 0
        self.crash_counts: Dict[int, int] = {}
        self.reference: Any = job.spec.reference
        self.have_reference = job.spec.reference is not None
        self.evaluate = None
        self.evaluate_batch = None
        self.pooled = True
        self.collect_obs = False
        #: detached "service.job" span covering admission -> finalize;
        #: outcome span forests are grafted under it as they land, and
        #: it joins the ambient tracer's forest at finalize.  Touched
        #: only on the dispatcher thread until then.
        self.job_span: Optional[Span] = None
        self.trace_ctx: Optional[TraceContext] = None
        self.ckpt: Optional[CampaignCheckpoint] = None
        self.cache: Optional[ResultCache] = None
        self.context_key: Optional[str] = None
        self.surrogate_key: Optional[str] = None
        self.cache_stats0: Any = None
        self.tracker: Optional[ProgressTracker] = None
        self.last_progress: Any = None
        self.deadline_end: Optional[float] = None
        self.deadline_hit = False
        self.t0 = time.perf_counter()

    @property
    def share(self) -> float:
        """Fraction of the universe already dispatched (fair-share
        ordering key; cached/restored faults count as dispatched)."""
        return self.dispatched / self.total if self.total else 1.0

    def shard_budget(self, shard: _Shard,
                    grace: float) -> Optional[float]:
        timeout = self.spec.fault_timeout_s
        if timeout is None or shard.kind != "faults":
            return None
        return (len(shard.indices) + 1) * timeout + grace


def _evaluate_shard(evaluate, faults: List[Any]) -> List[FaultOutcome]:
    """Worker-side driver for a per-fault shard: the same
    :func:`_evaluate_fault` partial a standalone campaign uses, applied
    in order — which is what makes scheduled results fault-for-fault
    identical to serial runs.  Module-level so the pool can pickle it."""
    return [evaluate(f) for f in faults]


def _call_reference(technique, target) -> Any:
    return technique(target)


class CampaignScheduler:
    """Async front end turning :class:`FaultCampaign` into a service.

    Parameters
    ----------
    workers:
        Worker processes shared by all jobs (default: CPU count - 1,
        at least 1, at most 8).  Jobs whose technique/detector/target
        cannot pickle run on a thread pool of the same width instead.
    cache:
        Default :class:`~repro.service.cache.ResultCache` consulted for
        every job that does not bring its own (``spec.cache`` wins).
        Sharing one cache across jobs is what makes overlapping fault
        universes free.
    shard_size:
        Faults per dispatched shard for techniques without a batched
        path (batched techniques shard at ``spec.batch_size``).
    name:
        Label used in health gauges and reports.
    queue:
        A :class:`~repro.service.queue.PersistentJobQueue` (or a path
        to create one at) making accepted jobs durable: every
        ``submit()`` is journaled *before* it is enqueued, state
        transitions are journaled as the job moves, and
        :meth:`recover` re-submits whatever a previous (killed)
        process left undone.  ``None`` (default) keeps the historical
        in-memory-only behaviour.
    """

    _ids = itertools.count(1)

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 timeout_grace_s: float = 1.0,
                 name: str = "scheduler",
                 status_path: Optional[str] = None,
                 queue: Optional[Any] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.workers = (workers if workers is not None
                        else max(1, min(8, (os.cpu_count() or 2) - 1)))
        self.cache = cache
        if queue is not None and not isinstance(queue, PersistentJobQueue):
            queue = PersistentJobQueue(os.fspath(queue))
        self.queue: Optional[PersistentJobQueue] = queue
        self.shard_size = shard_size
        self.timeout_grace_s = timeout_grace_s
        self.name = name
        # live-dashboard status file (``python -m repro.obs top`` reads
        # it); independent of OBS.enabled because watching progress
        # should not require paying for span recording
        self.status_path = (status_path if status_path is not None
                            else os.environ.get("REPRO_OBS_STATUS") or None)
        self._status_last = 0.0
        self._seq = itertools.count(1)
        self._intake: Deque[CampaignJob] = deque()
        self._intake_lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._wake: Optional[asyncio.Event] = None
        self._closing = False
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._threads: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._active: List[_JobRun] = []
        self._jobs: List[CampaignJob] = []

    # -- public API ----------------------------------------------------
    def submit(self, spec: CampaignSpec,
               priority: Optional[int] = None) -> CampaignJob:
        """Enqueue a campaign; returns immediately with its job handle.

        ``priority`` overrides ``spec.priority`` (higher runs first).
        With a persistent queue attached the job is journaled *before*
        it is enqueued — the write-ahead contract — and a failure to
        journal raises :class:`~repro.service.queue.QueueError` rather
        than accepting work the queue would forget after a crash.
        """
        if self._closing:
            raise CampaignError("scheduler is closed")
        if not isinstance(spec, CampaignSpec):
            raise TypeError("submit() takes a CampaignSpec")
        spec.require_workload()
        resolved = spec.resolved()
        job = CampaignJob(f"{self.name}-job{next(self._ids)}", resolved,
                          spec.priority if priority is None else priority)
        if self.queue is not None:
            self.queue.submit(job.id, resolved, job.priority)
        return self._enqueue(job)

    def _enqueue(self, job: CampaignJob) -> CampaignJob:
        # trace context and ledger are captured here, on the submitting
        # thread, while the submitter's observe() scope is ambient — the
        # dispatcher thread sees a different (possibly disabled) scope
        with obs_span("service.submit", job=job.id,
                      spec=job.spec.describe()):
            job.trace_ctx = TraceContext.capture()
        job.ledger = OBS.ledger
        self._jobs.append(job)
        self._ensure_thread()
        with self._intake_lock:
            self._intake.append(job)
        self._loop.call_soon_threadsafe(self._wake.set)
        return job

    def recover(self) -> List[CampaignJob]:
        """Re-submit every job a previous process journaled but never
        settled; returns their fresh handles, dispatch order.

        Recovered jobs keep their original id, priority and — when they
        had been admitted before the crash — their original fair-share
        seq, so the restarted schedule interleaves exactly as the
        uninterrupted one would have.  Specs carrying a checkpoint are
        resumed from it, and the shared :class:`ResultCache` replays
        every fault any earlier run already computed, which together
        make the recovered results ``to_dict()``-identical to an
        uninterrupted run.  Jobs journaled without a picklable workload
        cannot be rebuilt; they stay live in the journal (for ``queue
        requeue``/``drop``) and are counted, not raised.
        """
        if self.queue is None:
            return []
        jobs: List[CampaignJob] = []
        unrecoverable = 0
        with obs_span("service.recover", queue=self.queue.path) as sp:
            self.queue.replay()
            pending = self.queue.pending()
            self._advance_counters()
            for record in pending:
                job = self._rebuild_job(record)
                if job is None:
                    unrecoverable += 1
                    continue
                self._enqueue(job)
                jobs.append(job)
            sp.set(recovered=len(jobs), unrecoverable=unrecoverable,
                   settled=len(self.queue) - len(pending))
        if OBS.enabled:
            OBS.metrics.gauge("service.recovered_jobs").set(len(jobs))
            event("service.recover", queue=self.queue.path,
                  recovered=len(jobs), unrecoverable=unrecoverable)
        return jobs

    def _rebuild_job(self, record: JobRecord) -> Optional[CampaignJob]:
        try:
            spec = record.spec()
        except Exception as exc:  # noqa: BLE001 - journal outlived code
            warnings.warn(
                f"job {record.job_id!r} could not be rebuilt from the "
                f"queue journal ({exc}); leaving it live for operator "
                f"requeue/drop", RuntimeWarning, stacklevel=3)
            return None
        if spec.checkpoint is not None and not spec.resume:
            # the dead process may have checkpointed partial work; a
            # recovered job must harvest it rather than recompute
            spec = spec.replace(resume=True)
        job = CampaignJob(record.job_id, spec.resolved(), record.priority)
        job.recovered_seq = record.seq
        return job

    def _advance_counters(self) -> None:
        """Start the id and seq counters above everything journaled so
        recovered and fresh jobs never collide."""
        max_id = 0
        for record in self.queue.records.values():
            m = re.fullmatch(re.escape(self.name) + r"-job(\d+)",
                             record.job_id)
            if m:
                max_id = max(max_id, int(m.group(1)))
        if max_id:
            # _ids is class-level (unique across schedulers); consume
            # up to the journaled maximum, never rewind
            for i in CampaignScheduler._ids:
                if i >= max_id:
                    break
        max_seq = self.queue.max_seq()
        if max_seq >= 0:
            self._seq = itertools.count(max_seq + 1)

    def gather(self, *jobs: CampaignJob,
               timeout: Optional[float] = None) -> List[CampaignResult]:
        """Block until every job finishes; results in argument order."""
        if not jobs:
            jobs = tuple(self._jobs)
        return [job.result(timeout) for job in jobs]

    def progress(self) -> ServiceProgress:
        """Latest per-job progress snapshot (thread-safe reads of
        immutable records)."""
        snap = ServiceProgress()
        for jr in list(self._active):
            if jr.last_progress is not None:
                snap.update(jr.last_progress)
        return snap

    def close(self, wait: bool = True) -> None:
        """Stop accepting jobs; with ``wait`` (default) block until
        everything already submitted has finished, then tear down the
        loop and the pools."""
        if wait:
            for job in self._jobs:
                if not job.done():
                    try:
                        job.result()
                    except Exception:  # noqa: BLE001 - job errors are
                        pass           # surfaced via job.result(), not close
        self._closing = True
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._wake.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        for job in self._jobs:
            if not job.done():
                job._future.set_exception(
                    CampaignError("scheduler closed before job finished"))

    def __enter__(self) -> "CampaignScheduler":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close(wait=exc == (None, None, None))

    # -- loop-thread plumbing ------------------------------------------
    def _ensure_thread(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._loop_ready.clear()
        self._thread = threading.Thread(target=self._thread_main,
                                        name=f"{self.name}-dispatch",
                                        daemon=True)
        self._thread.start()
        self._loop_ready.wait()

    def _thread_main(self) -> None:
        asyncio.run(self._dispatch())

    def _executor(self, jr: _JobRun):
        if jr.pooled:
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers)
            return self._pool
        if self._threads is None:
            self._threads = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix=f"{self.name}-local")
        return self._threads

    def _kill_pool(self) -> None:
        pool = self._pool
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:  # noqa: BLE001 - already dead is fine
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None

    # -- job admission -------------------------------------------------
    def _mark_queue(self, job: CampaignJob, transition: str,
                    seq: Optional[int] = None,
                    error: Optional[BaseException] = None) -> None:
        """Journal a state transition, best-effort (see
        :meth:`PersistentJobQueue.mark`: a lost mark only costs a
        replay-from-cache after a crash)."""
        if self.queue is None:
            return
        self.queue.mark(job.id, transition, seq=seq,
                        error=None if error is None else repr(error))

    def _admit(self, job: CampaignJob) -> None:
        seq = (next(self._seq) if job.recovered_seq is None
               else job.recovered_seq)
        jr = _JobRun(job, seq)
        try:
            self._prepare(jr)
        except Exception as exc:  # noqa: BLE001 - bad spec fails its job
            job.state = JobState.FAILED
            self._mark_queue(job, "failed", error=exc)
            if not job.done():
                job._future.set_exception(exc)
            return
        job.state = JobState.RUNNING
        self._mark_queue(job, "dispatched", seq=jr.seq)
        self._active.append(jr)
        if not jr.emit_queue and not jr.ready and not jr.inflight:
            self._finalize(jr)

    def _prepare(self, jr: _JobRun) -> None:
        spec = jr.spec
        # collect when the dispatcher's ambient scope is enabled OR the
        # submitter's was (the submit-time context proves it); the
        # shipped snapshots are merged/grafted at finalize only if a
        # scope is still enabled there
        jr.collect_obs = OBS.enabled or jr.job.trace_ctx is not None
        if jr.collect_obs:
            jr.job_span = Span("service.job",
                               attrs={"job": jr.job.id,
                                      "spec": spec.describe()})
            jr.job_span.pid = os.getpid()
            if jr.job.trace_ctx is not None:
                jr.job_span.attrs.update(jr.job.trace_ctx.attrs())
                jr.trace_ctx = TraceContext(
                    trace_id=jr.job.trace_ctx.trace_id,
                    parent="service.job")
        jr.cache = spec.cache if spec.cache is not None else self.cache
        if jr.cache is not None:
            jr.context_key = spec.context_key()
            jr.cache_stats0 = jr.cache.stats.snapshot()
            if spec.prescreen == "surrogate":
                # surrogate verdicts live under their own context key —
                # never replayed into unprescreened runs (see
                # FaultCampaign.run, which this mirrors exactly)
                jr.surrogate_key = spec.surrogate_context_key()
        jr.tracker = ProgressTracker(jr.total, callback=self._progress_cb(jr),
                                     heartbeat_every=spec.heartbeat_every,
                                     label=jr.job.id)
        if spec.campaign_deadline_s is not None:
            jr.deadline_end = time.monotonic() + spec.campaign_deadline_s

        restored: Dict[int, FaultOutcome] = {}
        if spec.checkpoint is not None:
            jr.ckpt = CampaignCheckpoint(spec.checkpoint, spec.content_key(),
                                         every=spec.checkpoint_every)
            if spec.resume:
                restored = {i: o for i, o in jr.ckpt.load().items()
                            if 0 <= i < jr.total}
        # checkpoint-restored outcomes also seed the cache: they are
        # genuine deterministic verdicts this process never has to
        # recompute, here or in any other job
        for idx in sorted(restored):
            jr.dispatched += 1
            self._record(jr, idx, restored[idx], save=False)

        pending: List[int] = []
        for idx in range(jr.total):
            if idx in jr.outcomes:
                continue
            if jr.cache is not None:
                # prescreened jobs probe the surrogate context first
                # (silently — the transient context owns the miss
                # counter), then the shared transient context
                hit = None
                if jr.surrogate_key is not None:
                    hit = jr.cache.get(jr.surrogate_key,
                                       jr.fault_list[idx],
                                       self._threshold(jr),
                                       count_miss=False)
                if hit is None:
                    hit = jr.cache.get(jr.context_key, jr.fault_list[idx],
                                       self._threshold(jr))
                if hit is not None:
                    jr.dispatched += 1
                    self._record(jr, idx, hit, store=False)
                    continue
            pending.append(idx)

        if pending and spec.prescreen == "surrogate":
            # the prescreen runs here on the dispatcher, before the MNA
            # reference is even scheduled: a fully surrogate-decided job
            # performs zero transient simulations (same staging as
            # FaultCampaign.run — checkpoint, cache, prescreen, dispatch)
            from repro.surrogate.prescreen import SurrogatePrescreen
            t_pre = time.perf_counter()
            prescreen = SurrogatePrescreen(spec.technique, spec.detector,
                                           self._threshold(jr),
                                           config=spec.prescreen_config)
            verdicts = prescreen.classify(
                spec.target, [jr.fault_list[i] for i in pending])
            escalated: List[int] = []
            for idx, verdict in zip(pending, verdicts):
                if verdict is None:
                    escalated.append(idx)
                else:
                    jr.dispatched += 1
                    self._record(jr, idx, verdict)
            if jr.job_span is not None:
                node = Span("service.prescreen",
                            attrs={"job": jr.job.id,
                                   "n_faults": len(pending),
                                   "decided": len(pending) - len(escalated),
                                   "escalated": len(escalated)},
                            t_start=t_pre)
                node.close()
                node.pid = os.getpid()
                jr.job_span.children.append(node)
            pending = escalated

        jr.emit_queue = deque(pending)
        if not pending:
            return

        evaluate_probe = functools.partial(
            _evaluate_fault, spec.technique, spec.detector,
            self._threshold(jr), spec.on_error, jr.collect_obs,
            spec.fault_timeout_s, spec.target, None, jr.trace_ctx)
        jr.pooled = self._picklable(evaluate_probe, jr.fault_list)

        if jr.have_reference:
            self._build_shards(jr)
        else:
            # the fault-free reference is itself one dispatched unit,
            # so a slow reference never stalls other jobs' shards
            jr.ready.append(_Shard("ref"))

    def _threshold(self, jr: _JobRun) -> float:
        return jr.spec.threshold

    def _build_shards(self, jr: _JobRun) -> None:
        spec = jr.spec
        evaluate = functools.partial(
            _evaluate_fault, spec.technique, spec.detector,
            self._threshold(jr), spec.on_error, jr.collect_obs,
            spec.fault_timeout_s, spec.target, jr.reference, jr.trace_ctx)
        jr.evaluate = evaluate
        use_batch = (spec.batch_size > 1
                     and hasattr(spec.technique, "evaluate_batch"))
        if use_batch:
            jr.evaluate_batch = functools.partial(
                _evaluate_fault_batch, spec.technique, spec.detector,
                self._threshold(jr), spec.on_error, jr.collect_obs,
                spec.fault_timeout_s, spec.target, jr.reference,
                jr.trace_ctx)
        width = spec.batch_size if use_batch else self.shard_size
        pending = list(jr.emit_queue)
        for start in range(0, len(pending), width):
            jr.ready.append(_Shard("faults", pending[start:start + width]))

    def _progress_cb(self, jr: _JobRun):
        user_cb = jr.spec.progress

        def cb(progress: Any) -> None:
            jr.last_progress = progress
            if user_cb is not None:
                user_cb(progress)
        return cb

    @staticmethod
    def _picklable(evaluate, fault_list) -> bool:
        try:
            pickle.dumps(evaluate)
            pickle.dumps(fault_list)
        except Exception:  # noqa: BLE001 - any failure means thread pool
            return False
        return True

    # -- recording -----------------------------------------------------
    def _record(self, jr: _JobRun, idx: int, outcome: FaultOutcome,
                store: bool = True, save: bool = True) -> None:
        jr.outcomes[idx] = outcome
        if outcome.timed_out:
            jr.failures.timeouts.append(outcome.fault.describe())
            if OBS.enabled:
                OBS.metrics.counter("campaign.fault_timeouts").inc()
                event("campaign.fault_timeout", level="warning",
                      fault=outcome.fault.describe(),
                      budget_s=jr.spec.fault_timeout_s, job=jr.job.id)
        if outcome.quarantined:
            jr.failures.quarantined.append(outcome.fault.describe())
            if OBS.enabled:
                OBS.metrics.counter("campaign.quarantined").inc()
                event("campaign.quarantine", level="error",
                      fault=outcome.fault.describe(), job=jr.job.id)
        if (store and jr.cache is not None
                and not getattr(outcome, "from_cache", False)):
            if outcome.decided_by == "surrogate":
                if jr.surrogate_key is not None:
                    jr.cache.put(jr.surrogate_key, outcome)
            else:
                jr.cache.put(jr.context_key, outcome)
        if jr.job_span is not None:
            _graft_spans(jr.job_span, outcome)
        jr.tracker.update(outcome)
        if jr.ckpt is not None and save:
            self._save_ckpt(jr)

    def _save_ckpt(self, jr: _JobRun, force: bool = False) -> None:
        """Checkpoint writes are best-effort inside the service: a full
        disk or failed rename costs recomputation after a crash, not
        the dispatcher (standalone campaign runs keep raising)."""
        try:
            if force:
                jr.ckpt.save(jr.outcomes, jr.total)
            else:
                jr.ckpt.maybe_save(jr.outcomes, jr.total)
        except OSError:
            if OBS.enabled:
                OBS.metrics.counter("service.checkpoint_errors").inc()
                event("service.checkpoint_error", level="warning",
                      job=jr.job.id, path=jr.ckpt.path)

    def _emit_ready(self, jr: _JobRun) -> None:
        while jr.emit_queue and jr.emit_queue[0] in jr.buffered:
            idx = jr.emit_queue.popleft()
            self._record(jr, idx, jr.buffered.pop(idx))
        # quarantine/timeout verdicts buffered out of order still land
        # once their turn comes; nothing else to do here

    # -- dispatch loop -------------------------------------------------
    async def _dispatch(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._loop_ready.set()
        inflight: Dict[asyncio.Future, Tuple[_JobRun, _Shard, float]] = {}

        try:
            while True:
                if self._closing:
                    break
                self._drain_intake()
                self._sweep_deadlines(inflight)
                self._fill_slots(inflight)
                self._report_health(inflight)
                for jr in list(self._active):
                    self._maybe_finalize(jr)

                if not inflight:
                    await self._wait_for_wake()
                    continue

                await self._wait_inflight(inflight)
                self._handle_hangs(inflight)
                for jr in list(self._active):
                    self._maybe_finalize(jr)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
            if self._threads is not None:
                self._threads.shutdown(wait=False, cancel_futures=True)

    async def _wait_for_wake(self) -> None:
        try:
            await asyncio.wait_for(self._wake.wait(), timeout=0.5)
        except asyncio.TimeoutError:
            return
        self._wake.clear()

    def _drain_intake(self) -> None:
        while True:
            with self._intake_lock:
                if not self._intake:
                    return
                job = self._intake.popleft()
            if job.cancel_requested:
                self._cancel_job(job)
            else:
                self._admit(job)

    def _cancel_job(self, job: CampaignJob,
                    jr: Optional[_JobRun] = None) -> None:
        job.state = JobState.CANCELLED
        # cancellation is an explicit decision: retire the journal
        # record so no future recovery resurrects the job
        self._mark_queue(job, "dropped")
        if jr is not None and jr in self._active:
            self._active.remove(jr)
        if not job.done():
            job._future.set_exception(CampaignError("job cancelled"))

    def _sweep_deadlines(self, inflight) -> None:
        now = time.monotonic()
        for jr in list(self._active):
            if jr.job.cancel_requested:
                jr.ready.clear()
                self._cancel_job(jr.job, jr)
                continue
            if (jr.deadline_end is not None and not jr.deadline_hit
                    and now > jr.deadline_end):
                jr.deadline_hit = True
                jr.failures.deadline_hit = True
                jr.ready.clear()

    def _next_shard(self) -> Optional[Tuple[_JobRun, _Shard]]:
        candidates = [jr for jr in self._active if jr.ready]
        if not candidates:
            return None
        jr = min(candidates,
                 key=lambda j: (-j.job.priority, j.share, j.seq))
        return jr, jr.ready.popleft()

    def _fill_slots(self, inflight) -> None:
        while len(inflight) < self.workers:
            pick = self._next_shard()
            if pick is None:
                return
            jr, shard = pick
            if shard.kind == "faults" and jr.cache is not None:
                # dispatch-time recheck: a concurrent job may have
                # computed some of these faults since admission
                shard = self._strip_cached(jr, shard)
                if shard is None:
                    continue
            if shard.kind == "ref":
                fn = functools.partial(_call_reference, jr.spec.technique,
                                       jr.spec.target)
            elif jr.evaluate_batch is not None and len(shard.indices) > 1:
                fn = functools.partial(
                    jr.evaluate_batch,
                    [jr.fault_list[i] for i in shard.indices])
            else:
                fn = functools.partial(
                    _evaluate_shard, jr.evaluate,
                    [jr.fault_list[i] for i in shard.indices])
            try:
                fut = self._loop.run_in_executor(self._executor(jr), fn)
            except concurrent.futures.BrokenExecutor:
                jr.ready.appendleft(shard)
                self._handle_pool_break(inflight)
                continue
            jr.inflight += 1
            if shard.kind == "faults":
                jr.dispatched += len(shard.indices)
            if jr.job_span is not None:
                shard.span = Span("service.shard",
                                  attrs={"job": jr.job.id,
                                         "kind": shard.kind,
                                         "n_faults": len(shard.indices)})
                shard.span.pid = os.getpid()
            inflight[fut] = (jr, shard, time.monotonic())

    def _strip_cached(self, jr: _JobRun,
                      shard: _Shard) -> Optional[_Shard]:
        """Drop shard members another job already computed; returns the
        remaining shard, or ``None`` when the whole shard was served
        from the cache (hits are buffered for in-order emission)."""
        fresh: List[int] = []
        for idx in shard.indices:
            hit = None
            if jr.surrogate_key is not None:
                hit = jr.cache.get(jr.surrogate_key, jr.fault_list[idx],
                                   self._threshold(jr), count_miss=False)
            if hit is None:
                hit = jr.cache.get(jr.context_key, jr.fault_list[idx],
                                   self._threshold(jr), count_miss=False)
            if hit is not None:
                jr.buffered[idx] = hit
                jr.dispatched += 1
            else:
                fresh.append(idx)
        if len(fresh) == len(shard.indices):
            return shard
        self._emit_ready(jr)
        return _Shard("faults", fresh) if fresh else None

    async def _wait_inflight(self, inflight) -> None:
        now = time.monotonic()
        waits: List[float] = []
        for _, (jr, shard, t0) in inflight.items():
            budget = jr.shard_budget(shard, self.timeout_grace_s)
            if budget is not None:
                waits.append(t0 + budget - now)
        for jr in self._active:
            if jr.deadline_end is not None and not jr.deadline_hit:
                waits.append(jr.deadline_end - now)
        wait_s = max(0.0, min(waits)) + 0.02 if waits else 0.5

        wake_task = asyncio.ensure_future(self._wake.wait())
        done, _ = await asyncio.wait({wake_task, *inflight},
                                     timeout=wait_s,
                                     return_when=asyncio.FIRST_COMPLETED)
        if wake_task in done:
            self._wake.clear()
            done.discard(wake_task)
        else:
            wake_task.cancel()

        crashed: List[Tuple[_JobRun, _Shard]] = []
        for fut in done:
            jr, shard, t0 = inflight.pop(fut)
            jr.inflight -= 1
            try:
                payload = fut.result()
            except concurrent.futures.BrokenExecutor:
                crashed.append((jr, shard))
                continue
            except Exception as exc:  # noqa: BLE001 - fails this job only
                self._close_shard_span(jr, shard, failed="exception")
                self._fail_job(jr, exc)
                continue
            self._land(jr, shard, payload)
        if crashed:
            self._handle_crash(inflight, crashed)

    def _close_shard_span(self, jr: _JobRun, shard: _Shard,
                          **attrs: Any) -> None:
        """Close a shard's dispatch span and graft it under the job
        span (shards are re-dispatched with a fresh span, so requeue
        paths close the old one with a failure attribute)."""
        span, shard.span = shard.span, None
        if span is None:
            return
        if attrs:
            span.set(**attrs)
        span.close()
        if jr.job_span is not None:
            jr.job_span.children.append(span)

    def _land(self, jr: _JobRun, shard: _Shard, payload: Any) -> None:
        self._close_shard_span(jr, shard)
        if jr.job.state is not JobState.RUNNING:
            return
        if shard.kind == "ref":
            jr.reference = payload
            jr.have_reference = True
            self._build_shards(jr)
            return
        if jr.deadline_hit:
            return  # past the campaign deadline: result discarded
        for idx, outcome in zip(shard.indices, payload):
            jr.crash_counts.pop(idx, None)  # exonerated
            jr.buffered[idx] = outcome
        self._emit_ready(jr)

    # -- failure handling ----------------------------------------------
    def _fail_job(self, jr: _JobRun, exc: BaseException) -> None:
        if jr in self._active:
            self._active.remove(jr)
        jr.job.state = JobState.FAILED
        self._mark_queue(jr.job, "failed", error=exc)
        if not jr.job.done():
            jr.job._future.set_exception(exc)

    def _handle_crash(self, inflight, crashed) -> None:
        """A worker died: every pooled in-flight shard is suspect.  The
        pool is rebuilt; crashed shards are re-dispatched one fault at
        a time with a strike each, and a fault striking
        ``_QUARANTINE_AFTER`` times is recorded as a poison pill."""
        for jr, shard in crashed:
            jr.failures.worker_crashes += 1
            if OBS.enabled:
                OBS.metrics.counter("campaign.worker_crashes").inc()
            self._close_shard_span(jr, shard, failed="worker_crash")
            self._requeue_singles(jr, shard, strike=True)
        self._handle_pool_break(inflight)

    def _handle_pool_break(self, inflight) -> None:
        """Kill + rebuild the shared pool, rescuing innocent in-flight
        shards (re-queued intact, no strike)."""
        self._kill_pool()
        for fut, (jr, shard, _) in list(inflight.items()):
            if not jr.pooled:
                continue
            del inflight[fut]
            jr.inflight -= 1
            jr.failures.pools_killed += 1
            if OBS.enabled:
                OBS.metrics.counter("campaign.pools_killed").inc()
            if shard.kind == "faults":
                jr.dispatched -= len(shard.indices)
            self._close_shard_span(jr, shard, failed="pool_killed")
            jr.ready.appendleft(shard)
            fut.add_done_callback(_swallow)

    def _requeue_singles(self, jr: _JobRun, shard: _Shard,
                         strike: bool) -> None:
        jr.failures.pools_killed += 1
        if OBS.enabled:
            OBS.metrics.counter("campaign.pools_killed").inc()
        if shard.kind == "ref":
            jr.ready.appendleft(shard)
            return
        jr.dispatched -= len(shard.indices)
        for idx in reversed(shard.indices):
            if strike:
                jr.crash_counts[idx] = jr.crash_counts.get(idx, 0) + 1
                if jr.crash_counts[idx] >= _QUARANTINE_AFTER:
                    jr.buffered[idx] = _quarantine_outcome(
                        jr.fault_list[idx], jr.crash_counts[idx])
                    jr.dispatched += 1
                    continue
            jr.ready.appendleft(_Shard("faults", [idx]))
        self._emit_ready(jr)

    def _handle_hangs(self, inflight) -> None:
        """A shard past its wall-clock budget missed every cooperative
        check: kill the pool, time out single-fault shards, split
        multi-fault shards for individual blame."""
        now = time.monotonic()
        hung = [(fut, jr, shard, t0)
                for fut, (jr, shard, t0) in inflight.items()
                if jr.pooled
                and (budget := jr.shard_budget(shard,
                                               self.timeout_grace_s))
                is not None and now - t0 > budget]
        if not hung:
            return
        for fut, jr, shard, t0 in hung:
            del inflight[fut]
            jr.inflight -= 1
            fut.add_done_callback(_swallow)
            self._close_shard_span(jr, shard, failed="hang")
            jr.failures.pools_killed += 1
            if OBS.enabled:
                OBS.metrics.counter("campaign.pools_killed").inc()
            if len(shard.indices) == 1:
                idx = shard.indices[0]
                jr.buffered[idx] = _timeout_outcome(
                    jr.fault_list[idx], jr.spec.fault_timeout_s,
                    now - t0, killed=True)
                self._emit_ready(jr)
            else:
                jr.dispatched -= len(shard.indices)
                for idx in reversed(shard.indices):
                    jr.ready.appendleft(_Shard("faults", [idx]))
        self._handle_pool_break(inflight)

    # -- completion ----------------------------------------------------
    def _maybe_finalize(self, jr: _JobRun) -> None:
        if jr.job.state is not JobState.RUNNING:
            return
        work_left = jr.ready or jr.inflight
        if jr.deadline_hit:
            if jr.inflight:
                return
        elif work_left or jr.emit_queue:
            return
        self._finalize(jr)

    def _finalize(self, jr: _JobRun) -> None:
        if jr in self._active:
            self._active.remove(jr)
        unevaluated = [i for i in jr.emit_queue if i not in jr.outcomes]
        if unevaluated:
            jr.failures.skipped.extend(
                jr.fault_list[i].describe() for i in unevaluated)
            if OBS.enabled:
                OBS.metrics.counter("campaign.skipped").inc(len(unevaluated))
                event("campaign.deadline", level="warning",
                      skipped=len(unevaluated), job=jr.job.id,
                      budget_s=jr.spec.campaign_deadline_s)
        result = CampaignResult(
            target_name=jr.spec.name
            or getattr(jr.spec.target, "name",
                       type(jr.spec.target).__name__),
            reference=jr.reference,
            threshold=self._threshold(jr),
            failures=jr.failures)
        result.outcomes = [jr.outcomes[i] for i in sorted(jr.outcomes)]
        result.partial = bool(jr.failures.skipped or jr.failures.deadline_hit
                              or jr.failures.timeouts
                              or jr.failures.quarantined)
        if jr.ckpt is not None:
            self._save_ckpt(jr, force=True)
        result.workers = self.workers
        result.elapsed_s = time.perf_counter() - jr.t0
        if jr.cache is not None and jr.cache_stats0 is not None:
            result.cache_stats = jr.cache.stats.delta(jr.cache_stats0)
        if jr.job_span is not None:
            jr.job_span.set(n_faults=result.n_faults,
                            n_detected=result.n_detected,
                            coverage=result.coverage)
            if result.n_prescreened:
                jr.job_span.set(n_prescreened=result.n_prescreened)
            if result.partial:
                jr.job_span.set(partial=True)
            jr.job_span.close()
        if jr.collect_obs:
            if OBS.enabled:
                self._merge_obs(result)
                if jr.job_span is not None:
                    # the finished job span joins the ambient forest as
                    # a root: Session.report()/exports see one
                    # connected trace
                    OBS.tracer.spans.append(jr.job_span)
            else:
                # no scope is ambient on the dispatcher right now (the
                # submitter is between scopes, e.g. in watch()); park
                # the payload so the gathering thread joins it instead
                jr.job._pending_obs = (result, jr.job_span)
        jr.job.state = JobState.DONE
        if not jr.job.done():
            jr.job._future.set_result(result)
        self._mark_queue(jr.job, "done")
        ledger = jr.job.ledger if jr.job.ledger is not None else OBS.ledger
        if ledger is not None:
            # persistence is best-effort: a full disk must not fail a
            # job that already computed its result
            try:
                ledger.record_campaign(result, key=jr.spec.content_key(),
                                       name=result.target_name,
                                       prescreen=jr.spec.prescreen,
                                       job=jr.job.id)
            except Exception:  # noqa: BLE001
                pass
        self._publish_status(force=True)

    @staticmethod
    def _merge_obs(result: CampaignResult) -> None:
        """Fold per-fault snapshots back into the ambient scope — the
        same parity contract as a pooled campaign run."""
        m = OBS.metrics
        for o in result.outcomes:
            m.merge(o.metrics)
            if o.events:
                OBS.events.extend(o.events)
            m.histogram("campaign.fault_wall_s").observe(o.elapsed_s)
        m.counter("campaign.runs").inc()
        m.counter("campaign.faults_evaluated").inc(result.n_faults)
        m.counter("campaign.errors").inc(result.n_errors)

    def _report_health(self, inflight) -> None:
        self._publish_status()
        if not OBS.enabled:
            return
        OBS.metrics.gauge("service.jobs_active").set(len(self._active))
        OBS.metrics.gauge("service.shards_inflight").set(len(inflight))
        OBS.metrics.gauge("service.queue_depth").set(
            sum(len(jr.ready) for jr in self._active))
        if self.queue is not None:
            # live (unsettled) jobs in the persistent journal — distinct
            # from queue_depth above, which counts ready shards
            OBS.metrics.gauge("service.journal_depth").set(
                self.queue.depth())
        for jr in list(self._active):
            if jr.last_progress is not None:
                # job ids flow into the metric name: the Prometheus
                # exporter sanitises them to the 0.0.4 charset
                OBS.metrics.gauge(f"service.job.{jr.job.id}.progress").set(
                    jr.last_progress.fraction)

    def _publish_status(self, force: bool = False) -> None:
        """Atomically refresh the dashboard status file (throttled;
        no-op unless a status path is configured)."""
        if self.status_path is None:
            return
        now = time.monotonic()
        if not force and now - self._status_last < 0.5:
            return
        self._status_last = now
        from repro.obs.dashboard import status_snapshot, write_status
        try:
            write_status(status_snapshot(self), self.status_path)
        except OSError:  # pragma: no cover - status is best-effort
            pass


def _swallow(fut) -> None:
    """Consume an abandoned future's exception so asyncio never logs
    'exception was never retrieved' for shards we deliberately killed."""
    if not fut.cancelled():
        fut.exception()


__all__ = ["CampaignScheduler", "CampaignJob", "JobState",
           "DEFAULT_SHARD_SIZE"]
