"""The campaign job model: one frozen spec instead of kwarg sprawl.

:class:`CampaignSpec` is the single description of a fault campaign —
workload (technique, detector, target, faults, optional precomputed
reference) plus every execution, resilience and service option that
used to travel as loose keyword arguments on
:meth:`~repro.faults.campaign.FaultCampaign.run`.  The same object is
accepted by ``FaultCampaign.run(spec=...)`` and by
:meth:`~repro.service.scheduler.CampaignScheduler.submit`, and it
serialises into the campaign content hash (:meth:`content_key`), so a
spec *is* the campaign's identity for checkpointing and result caching.

Option fields default to ``None`` meaning "inherit": a spec carrying
only ``workers=4`` composes with a campaign constructed with its own
threshold, and :meth:`resolved` fills the remaining holes from explicit
fallbacks and then :data:`DEFAULTS`.  The dataclass is frozen so a spec
can be hashed into content keys, shared between concurrent scheduler
jobs and shipped to worker processes without defensive copying.
"""

from __future__ import annotations

import base64
import dataclasses
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.resilience.checkpoint import campaign_key, fault_context_key

#: serialised-spec schema tag; bump on incompatible layout changes.
SPEC_SCHEMA = "repro.campaign-spec/1"

#: concrete values a :meth:`CampaignSpec.resolved` spec falls back to
#: when neither the spec nor the caller supplies one.
DEFAULTS: Dict[str, Any] = {
    "threshold": 0.05,
    "errors_as_detected": True,
    "workers": 1,
    "batch_size": 1,
    "checkpoint_every": 1,
    "timeout_grace_s": 1.0,
    "heartbeat_every": 1,
}

#: option fields subject to None-means-inherit resolution.
_OPTION_FIELDS = tuple(DEFAULTS)


@dataclass(frozen=True)
class CampaignSpec:
    """One frozen description of a fault campaign and how to run it.

    Workload fields (``technique``, ``detector``, ``target``,
    ``faults``) may stay ``None`` when the spec only carries options for
    ``FaultCampaign.run(spec=...)``; :meth:`CampaignScheduler.submit`
    requires all four.  ``progress`` and ``cache`` are live objects
    (callback, :class:`~repro.service.cache.ResultCache`) and are
    excluded from equality — they configure *how* a run reports and
    memoises, never *what* it computes.
    """

    # -- workload ------------------------------------------------------
    technique: Optional[Callable[[Any], Any]] = None
    detector: Optional[Callable[[Any, Any], float]] = None
    target: Any = None
    faults: Optional[Tuple[Any, ...]] = None
    reference: Any = None
    name: Optional[str] = None

    # -- detection + execution options (None = inherit) ----------------
    threshold: Optional[float] = None
    errors_as_detected: Optional[bool] = None
    workers: Optional[int] = None
    batch_size: Optional[int] = None
    #: ``"surrogate"`` classifies clear detections/misses through the
    #: vector-fitted prescreen (:mod:`repro.surrogate`) and only runs
    #: the full MNA transient for faults inside the margin band;
    #: ``None`` (the default, not an inherit hole) disables it.
    prescreen: Optional[str] = None
    prescreen_config: Optional[Any] = None

    # -- resilience options --------------------------------------------
    fault_timeout_s: Optional[float] = None
    campaign_deadline_s: Optional[float] = None
    checkpoint: Optional[str] = None
    resume: bool = False
    checkpoint_every: Optional[int] = None
    timeout_grace_s: Optional[float] = None

    # -- progress + service options ------------------------------------
    progress: Optional[Callable[[Any], None]] = field(default=None,
                                                      compare=False)
    heartbeat_every: Optional[int] = None
    priority: int = 0
    cache: Optional[Any] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.faults is not None and not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        if self.threshold is not None and not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        for name in ("workers", "batch_size", "checkpoint_every",
                     "heartbeat_every"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in ("fault_timeout_s", "campaign_deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        if (self.timeout_grace_s is not None
                and self.timeout_grace_s < 0):
            raise ValueError("timeout_grace_s must be non-negative")
        if self.resume and self.checkpoint is None:
            raise ValueError("resume=True requires checkpoint=<path>")
        if self.prescreen not in (None, "surrogate"):
            raise ValueError(
                f"unknown prescreen {self.prescreen!r} "
                f"(supported: 'surrogate')")
        if self.prescreen_config is not None and self.prescreen is None:
            raise ValueError("prescreen_config requires prescreen=")

    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "CampaignSpec":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def resolved(self, **fallbacks: Any) -> "CampaignSpec":
        """A spec with every ``None`` option field made concrete.

        ``fallbacks`` (e.g. a campaign's constructor configuration)
        win over :data:`DEFAULTS`; values already set on the spec win
        over both.
        """
        changes: Dict[str, Any] = {}
        for name in _OPTION_FIELDS:
            if getattr(self, name) is None:
                fallback = fallbacks.get(name)
                changes[name] = (DEFAULTS[name] if fallback is None
                                 else fallback)
        return self.replace(**changes) if changes else self

    # ------------------------------------------------------------------
    @property
    def on_error(self) -> str:
        """The campaign-internal error-policy string."""
        detected = self.errors_as_detected
        if detected is None:
            detected = DEFAULTS["errors_as_detected"]
        return "detected" if detected else "undetected"

    def has_workload(self) -> bool:
        return (self.technique is not None and self.detector is not None
                and self.target is not None and self.faults is not None)

    def require_workload(self) -> None:
        if not self.has_workload():
            missing = [f for f in ("technique", "detector", "target",
                                   "faults") if getattr(self, f) is None]
            raise ValueError(
                f"CampaignSpec is missing workload fields: "
                f"{', '.join(missing)}")

    # ------------------------------------------------------------------
    def context_key(self) -> str:
        """The per-fault evaluation context hash (see
        :func:`repro.resilience.checkpoint.fault_context_key`) — the
        result cache's addressing prefix."""
        self.require_workload()
        return fault_context_key(self.technique, self.detector, self.target,
                                 self.on_error, self.fault_timeout_s)

    def surrogate_context_key(self) -> str:
        """The cache context for surrogate-decided outcomes.

        Derived from :meth:`context_key` plus the threshold and the
        full prescreen configuration: a surrogate verdict is only
        replayable by a campaign running the *same* prescreen against
        the *same* threshold, and it must never collide with the
        transient context that unprescreened runs share.
        """
        from repro.resilience.checkpoint import _hash_parts
        return _hash_parts((self.context_key(),
                            *self._prescreen_parts(resolved=True)
                            )).hexdigest()

    def _prescreen_parts(self, resolved: bool = False) -> Tuple[str, ...]:
        """Identity strings of the prescreen configuration (empty when
        no prescreen is set, so existing keys stay bit-identical)."""
        if self.prescreen is None:
            return ()
        from repro.surrogate.prescreen import PrescreenConfig
        config = self.prescreen_config or PrescreenConfig()
        parts = [f"prescreen={self.prescreen}", config.describe()]
        if resolved:
            threshold = self.threshold
            if threshold is None:
                threshold = DEFAULTS["threshold"]
            parts.insert(0, repr(float(threshold)))
        return tuple(parts)

    def content_key(self) -> str:
        """The full campaign content hash — identical to the key the
        checkpoint layer derives, so a spec round-trips through
        checkpoint/resume and the scheduler without re-deriving keys."""
        self.require_workload()
        spec = self.resolved()
        return campaign_key(spec.technique, spec.detector, spec.target,
                            spec.faults, spec.threshold, spec.on_error,
                            spec.fault_timeout_s,
                            extra=spec._prescreen_parts())

    # ------------------------------------------------------------------
    #: scalar fields serialised as plain JSON in :meth:`to_dict` —
    #: everything human-readable about a journaled job.
    _SCALAR_FIELDS = ("name", "threshold", "errors_as_detected", "workers",
                      "batch_size", "prescreen", "fault_timeout_s",
                      "campaign_deadline_s", "checkpoint", "resume",
                      "checkpoint_every", "timeout_grace_s",
                      "heartbeat_every", "priority")

    #: object fields carried through the pickle blob (callables,
    #: circuits, fault objects — not JSON-representable).
    _WORKLOAD_FIELDS = ("technique", "detector", "target", "faults",
                        "reference", "prescreen_config")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable snapshot of the spec — what the
        persistent job queue journals.

        Scalar options are stored as plain JSON (so a journal is
        greppable); the workload objects (technique, detector, target,
        faults, reference, prescreen config) are pickled into one
        base64 ``workload`` blob, exactly the way checkpoints persist
        outcomes.  Live objects (``progress``, ``cache``) are dropped —
        they configure a run, never what it computes.  An unpicklable
        workload yields ``workload=None``: the record still journals
        state transitions but cannot be replayed after a restart.
        """
        doc: Dict[str, Any] = {"schema": SPEC_SCHEMA}
        for name in self._SCALAR_FIELDS:
            doc[name] = getattr(self, name)
        if self.faults is not None:
            doc["n_faults"] = len(self.faults)
        workload = {f: getattr(self, f) for f in self._WORKLOAD_FIELDS}
        try:
            blob = pickle.dumps(workload, protocol=pickle.HIGHEST_PROTOCOL)
            doc["workload"] = base64.b64encode(blob).decode("ascii")
        except Exception:  # noqa: BLE001 - closures/lambdas cannot journal
            doc["workload"] = None
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CampaignSpec":
        """Rebuild a spec journaled by :meth:`to_dict` (validation
        re-runs).  Raises ``ValueError`` for unknown schemas and specs
        journaled without a recoverable workload."""
        if not isinstance(doc, dict) or doc.get("schema") != SPEC_SCHEMA:
            raise ValueError(
                f"not a serialised CampaignSpec: "
                f"{doc.get('schema') if isinstance(doc, dict) else doc!r}")
        if not doc.get("workload"):
            raise ValueError(
                "spec was journaled without a recoverable workload "
                "(technique/detector/target/faults did not pickle)")
        workload = pickle.loads(base64.b64decode(doc["workload"]))
        fields = {name: doc.get(name) for name in cls._SCALAR_FIELDS}
        fields["resume"] = bool(fields.get("resume"))
        fields["priority"] = int(fields.get("priority") or 0)
        return cls(**fields, **workload)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        n = "?" if self.faults is None else len(self.faults)
        label = self.name or getattr(self.target, "name", None) \
            or (type(self.target).__name__ if self.target is not None
                else "unbound")
        return f"CampaignSpec({label}, {n} faults, priority={self.priority})"


__all__ = ["CampaignSpec", "DEFAULTS", "SPEC_SCHEMA"]
