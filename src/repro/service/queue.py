"""Write-ahead persistent job queue: campaigns survive the scheduler.

The resilience layer (checkpoints, worker quarantine) protects a
*running* campaign; this module extends the same interrupted ==
uninterrupted guarantee one level up, to the service.  Every job a
:class:`~repro.service.scheduler.CampaignScheduler` accepts is first
journaled — an append-only JSONL file of the job's serialised
:meth:`~repro.service.spec.CampaignSpec.to_dict` plus state
transitions — so a SIGKILLed scheduler forfeits nothing: on restart
:meth:`PersistentJobQueue.replay` reconstructs every accepted job and
the scheduler re-submits the undone ones with their original identity,
priority and arrival order, while done ones re-serve from checkpoint +
:class:`~repro.service.cache.ResultCache`.

Journal format (one JSON object per line, schema-tagged)::

    {"schema": "repro.job-queue/1", "event": "submitted",
     "job": "svc-job0", "priority": 1, "key": "<content hash>",
     "spec": {... CampaignSpec.to_dict() ...}, "t": 1700000000.0}
    {"schema": ..., "event": "dispatched", "job": "svc-job0", "seq": 0}
    {"schema": ..., "event": "done", "job": "svc-job0"}

State machine per job: ``submitted → dispatched → done | failed``,
plus the operator transitions ``requeued`` (terminal/stuck → submitted)
and ``dropped`` (any → terminal, never replayed).  Write discipline
mirrors the run ledger: single-line appends under a process-local lock
with ``flush`` + ``fsync``.  Journaling a *submission* must succeed —
that append IS the durability contract, so :meth:`submit` raises on
failure.  Transition marks are best-effort: a lost ``done`` mark only
means the job re-runs from cache + checkpoint after a crash, which the
recovery invariant makes free.

Read discipline mirrors the checkpoint/cache layers: a torn tail line
(the crash interrupted an append) or a corrupt interior record is
never fatal.  :meth:`replay` skips bad lines, quarantines the raw
bytes to ``<path>.corrupt`` and atomically rewrites the journal with
the surviving records (``mkstemp`` + ``fsync`` + ``os.replace``), so
one bad write can never poison the queue's history.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.service.spec import CampaignSpec

#: journal record schema tag; bump on incompatible layout changes.
QUEUE_SCHEMA = "repro.job-queue/1"

#: states a journaled job can be in.  ``submitted`` and ``dispatched``
#: are live (replayed after a restart); the rest are settled.
LIVE_STATES = ("submitted", "dispatched")
SETTLED_STATES = ("done", "failed", "dropped")

_EVENTS = ("submitted", "dispatched", "done", "failed", "requeued",
           "dropped")


@dataclass
class JobRecord:
    """The replayed view of one journaled job."""

    job_id: str
    state: str = "submitted"
    priority: int = 0
    #: scheduler admission order (None until dispatched once).
    seq: Optional[int] = None
    #: campaign content hash — links the journal to checkpoint files,
    #: cache entries and run-ledger rows for the same campaign.
    key: Optional[str] = None
    #: the ``CampaignSpec.to_dict()`` snapshot journaled at submit.
    spec_doc: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: journal arrival order (tie-break within a priority class).
    order: int = 0

    @property
    def live(self) -> bool:
        return self.state in LIVE_STATES

    def spec(self) -> CampaignSpec:
        """Rebuild the journaled spec (raises ``ValueError`` when the
        workload was not picklable at submit time)."""
        return CampaignSpec.from_dict(self.spec_doc)

    def recoverable(self) -> bool:
        return bool(self.spec_doc.get("workload"))

    def describe(self) -> str:
        name = self.spec_doc.get("name") or "-"
        n = self.spec_doc.get("n_faults", "?")
        key = (self.key or "?")[:12]
        seq = "-" if self.seq is None else self.seq
        return (f"{self.job_id}  {self.state:<10}  prio={self.priority} "
                f"seq={seq}  {name}  {n} faults  {key}")


class QueueError(RuntimeError):
    """A submission could not be made durable."""


class PersistentJobQueue:
    """Append-only JSONL write-ahead journal of campaign jobs.

    One instance per path; safe to share between the submitting thread
    and the scheduler's dispatcher thread.  The in-memory ``records``
    view is kept consistent with the journal on every append, so
    :meth:`depth` and :meth:`pending` never re-read the file.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        #: replayed job records, journal arrival order.
        self.records: Dict[str, JobRecord] = {}
        #: torn/corrupt lines quarantined by the most recent replay.
        self.corrupt = 0
        self.replay()

    # -- writing -------------------------------------------------------
    def _append(self, doc: Dict[str, Any]) -> None:
        """One locked, fsync'd single-line append (the ledger idiom)."""
        doc.setdefault("schema", QUEUE_SCHEMA)
        doc.setdefault("t", round(time.time(), 6))
        line = json.dumps(doc, sort_keys=True)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def submit(self, job_id: str, spec: CampaignSpec,
               priority: int = 0) -> JobRecord:
        """Journal one accepted job.  This append IS the durability
        contract — raises :class:`QueueError` if it cannot be made
        durable, so the caller never holds a job the queue would
        forget."""
        try:
            key = spec.content_key()
        except Exception:  # noqa: BLE001 - spec may lack a workload
            key = None
        doc = {"event": "submitted", "job": job_id, "priority": priority,
               "key": key, "spec": spec.to_dict()}
        with self._lock:
            try:
                self._append(doc)
            except OSError as exc:
                raise QueueError(
                    f"could not journal job {job_id!r} to "
                    f"{self.path!r}: {exc}") from exc
            record = JobRecord(job_id=job_id, priority=priority, key=key,
                               spec_doc=doc["spec"],
                               order=len(self.records))
            self.records[job_id] = record
        if not record.recoverable():
            warnings.warn(
                f"job {job_id!r} journaled without a recoverable "
                f"workload (unpicklable technique/detector/target/"
                f"faults) — it cannot be replayed after a restart",
                RuntimeWarning, stacklevel=2)
        return record

    def mark(self, job_id: str, event: str, *, seq: Optional[int] = None,
             error: Optional[str] = None) -> bool:
        """Journal one state transition, best-effort.

        A lost mark is safe by construction: a job whose ``done`` never
        landed simply replays after a crash and re-serves from cache +
        checkpoint.  Returns ``False`` when the append failed or the
        job is unknown."""
        if event not in _EVENTS or event == "submitted":
            raise ValueError(f"unknown queue transition {event!r}")
        doc: Dict[str, Any] = {"event": event, "job": job_id}
        if seq is not None:
            doc["seq"] = seq
        if error is not None:
            doc["error"] = str(error)
        with self._lock:
            record = self.records.get(job_id)
            if record is None:
                return False
            try:
                self._append(doc)
            except OSError:
                return False
            self._apply(record, doc)
        return True

    @staticmethod
    def _apply(record: JobRecord, doc: Dict[str, Any]) -> None:
        event = doc["event"]
        if event == "requeued":
            record.state = "submitted"
            record.error = None
        else:
            record.state = event
        if doc.get("seq") is not None:
            record.seq = int(doc["seq"])
        if doc.get("error") is not None:
            record.error = str(doc["error"])

    # -- operator transitions (CLI) ------------------------------------
    def requeue(self, job_id: str) -> bool:
        """Put a failed/dropped/stuck job back in line for the next
        recovery or drain."""
        return self.mark(job_id, "requeued")

    def drop(self, job_id: str) -> bool:
        """Retire a job so no future replay resubmits it."""
        return self.mark(job_id, "dropped")

    # -- reading -------------------------------------------------------
    def replay(self) -> Dict[str, JobRecord]:
        """Rebuild the record view from the journal on disk.

        Torn or corrupt lines are quarantined: their raw bytes are
        appended to ``<path>.corrupt``, the count lands in
        ``self.corrupt``, and the journal is atomically rewritten with
        only the surviving lines so the damage never re-surfaces.
        Marks referencing jobs whose ``submitted`` line was lost are
        quarantined too — a transition without a spec is unusable.
        """
        good: List[str] = []
        bad: List[str] = []
        records: Dict[str, JobRecord] = {}
        try:
            # errors="replace", not strict: a partially flushed page can
            # leave arbitrary bytes in the tail, and a journal that
            # cannot even decode must quarantine that line, never crash
            # recovery.  Mangled bytes become U+FFFD, fail json.loads
            # below and take the normal quarantine path.
            with open(self.path, "r", encoding="utf-8",
                      errors="replace") as fh:
                raw_lines = fh.read().split("\n")
        except OSError:
            raw_lines = []
        for raw in raw_lines:
            line = raw.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                bad.append(raw)
                continue
            if (not isinstance(doc, dict)
                    or doc.get("schema") != QUEUE_SCHEMA
                    or doc.get("event") not in _EVENTS
                    or not isinstance(doc.get("job"), str)):
                bad.append(raw)
                continue
            job_id = doc["job"]
            if doc["event"] == "submitted":
                spec_doc = doc.get("spec")
                if not isinstance(spec_doc, dict):
                    bad.append(raw)
                    continue
                records[job_id] = JobRecord(
                    job_id=job_id,
                    priority=int(doc.get("priority") or 0),
                    key=doc.get("key"), spec_doc=spec_doc,
                    order=len(records))
            elif job_id in records:
                self._apply(records[job_id], doc)
            else:
                bad.append(raw)
                continue
            good.append(line)
        with self._lock:
            if bad:
                self._quarantine(good, bad)
            self.corrupt = len(bad)
            self.records = records
        return records

    def _quarantine(self, good: List[str], bad: List[str]) -> None:
        """Move the damage aside, keep the survivors (atomic)."""
        with open(self.path + ".corrupt", "a", encoding="utf-8") as fh:
            for raw in bad:
                fh.write(raw + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._rewrite(good)
        warnings.warn(
            f"job queue {self.path!r}: quarantined {len(bad)} "
            f"torn/corrupt journal line(s) to "
            f"{self.path + '.corrupt'!r}", RuntimeWarning, stacklevel=3)

    def _rewrite(self, lines: List[str]) -> None:
        parent = os.path.dirname(self.path) or "."
        os.makedirs(parent, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=parent, suffix=".queue.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for line in lines:
                    fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- views ---------------------------------------------------------
    def pending(self) -> List[JobRecord]:
        """Live records in dispatch order: priority first (higher
        wins), then original scheduler admission order, then journal
        arrival — the exact order an uninterrupted scheduler would
        have used."""
        with self._lock:
            live = [r for r in self.records.values() if r.live]
        return sorted(live, key=lambda r: (
            -r.priority, r.seq if r.seq is not None else float("inf"),
            r.order))

    def depth(self) -> int:
        """Number of live (not yet settled) jobs."""
        with self._lock:
            return sum(1 for r in self.records.values() if r.live)

    def __len__(self) -> int:
        with self._lock:
            return len(self.records)

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self.records.get(job_id)

    def max_seq(self) -> int:
        """Highest scheduler admission seq ever journaled (-1 when
        none) — a restarted scheduler starts counting above it so
        recovered and new jobs never collide."""
        with self._lock:
            seqs = [r.seq for r in self.records.values()
                    if r.seq is not None]
        return max(seqs) if seqs else -1

    # -- maintenance ---------------------------------------------------
    def compact(self) -> int:
        """Atomically rewrite the journal keeping only live jobs
        (one ``submitted`` line each, plus a ``dispatched`` mark when
        the job had been admitted).  Settled history is already in the
        run ledger; compaction bounds the journal for long-lived
        services.  Returns the number of settled records dropped."""
        with self._lock:
            live = [r for r in self.records.values() if r.live]
            dropped = len(self.records) - len(live)
            lines: List[str] = []
            records: Dict[str, JobRecord] = {}
            for order, record in enumerate(live):
                doc = {"schema": QUEUE_SCHEMA, "event": "submitted",
                       "job": record.job_id, "priority": record.priority,
                       "key": record.key, "spec": record.spec_doc,
                       "t": round(time.time(), 6)}
                lines.append(json.dumps(doc, sort_keys=True))
                if record.seq is not None:
                    lines.append(json.dumps(
                        {"schema": QUEUE_SCHEMA, "event": "dispatched",
                         "job": record.job_id, "seq": record.seq,
                         "t": round(time.time(), 6)}, sort_keys=True))
                fresh = JobRecord(job_id=record.job_id,
                                  state=record.state,
                                  priority=record.priority,
                                  seq=record.seq, key=record.key,
                                  spec_doc=record.spec_doc, order=order)
                records[record.job_id] = fresh
            self._rewrite(lines)
            self.records = records
        return dropped

    def describe(self) -> str:
        with self._lock:
            records = list(self.records.values())
        if not records:
            return "queue is empty"
        lines = [r.describe() for r in records]
        lines.append(f"{len(records)} job(s), "
                     f"{sum(1 for r in records if r.live)} live, "
                     f"corrupt lines quarantined: {self.corrupt}")
        return "\n".join(lines)


__all__ = ["PersistentJobQueue", "JobRecord", "QueueError",
           "QUEUE_SCHEMA", "LIVE_STATES", "SETTLED_STATES"]
