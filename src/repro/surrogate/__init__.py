"""Reduced-order rational surrogates for mixed-signal fault testing.

Vector fitting (Gustavsen & Semlyen 1999, Deschrijver et al. 2008)
turns a sampled frequency response into a stable pole/residue model
whose transient evaluation is a pole-wise recurrence — orders of
magnitude cheaper than the full MNA march.  The package splits into:

* :mod:`~repro.surrogate.vectorfit` — the fitter and the model
  (pure numpy/scipy, no circuit knowledge),
* :mod:`~repro.surrogate.prescreen` — the campaign stage that samples
  circuits via :class:`~repro.spice.linearize.FrequencyPencil`,
  classifies clear detections/non-detections against a margin band and
  escalates the rest to the full transient,
* :mod:`~repro.surrogate.drift` — pole drift as a frequency-domain
  fault signature (technique + detector).
"""

from repro.surrogate.drift import (
    PoleDrift,
    PoleDriftDetector,
    SurrogateFitTechnique,
    pole_drift,
)
from repro.surrogate.prescreen import (
    PrescreenConfig,
    SurrogatePrescreen,
    SurrogateWorkload,
    fit_circuit,
    sample_grid,
    sample_stimulus,
    surrogate_measurement,
    waveform_source,
)
from repro.surrogate.vectorfit import (
    RELOCATION_TOL,
    FitReport,
    SurrogateModel,
    VectorFitter,
    sample_frequencies,
)

__all__ = [
    "VectorFitter",
    "SurrogateModel",
    "FitReport",
    "sample_frequencies",
    "RELOCATION_TOL",
    "PrescreenConfig",
    "SurrogateWorkload",
    "SurrogatePrescreen",
    "fit_circuit",
    "surrogate_measurement",
    "sample_grid",
    "sample_stimulus",
    "waveform_source",
    "PoleDrift",
    "pole_drift",
    "SurrogateFitTechnique",
    "PoleDriftDetector",
]
