"""Pole drift as a frequency-domain fault signature.

The paper's impulse-response technique classifies faults in the time
domain; a fitted :class:`~repro.surrogate.vectorfit.SurrogateModel`
exposes the same information spectrally — a fault that changes the
circuit's dynamics moves its poles.  This module turns that into a
campaign-compatible technique/detector pair:

* :class:`SurrogateFitTechnique` maps a circuit to its fitted surrogate
  (one ``FrequencyPencil`` factorisation + vector fit, no transient),
* :func:`pole_drift` greedily matches the faulty model's poles to the
  reference model's and reports the largest relative displacement,
* :class:`PoleDriftDetector` thresholds that displacement as the
  campaign detection score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.surrogate.prescreen import PrescreenConfig, fit_circuit
from repro.surrogate.vectorfit import SurrogateModel


@dataclass(frozen=True)
class PoleDrift:
    """Greedy pole correspondence between two fitted models.

    ``pairs`` holds ``(reference_pole, matched_pole, relative_shift)``
    per reference pole, where the shift is normalised by the reference
    pole's magnitude (floored at 1 rad/s so origin poles do not blow
    up the ratio).  ``unmatched`` counts order mismatch between the two
    fits — itself a fault signature.
    """

    pairs: Tuple[Tuple[complex, complex, float], ...]
    unmatched: int

    @property
    def max_shift(self) -> float:
        worst = max((shift for _, _, shift in self.pairs), default=0.0)
        return worst if self.unmatched == 0 else max(worst, 1.0)

    def summary(self) -> str:
        return (f"pole drift: {len(self.pairs)} matched, "
                f"{self.unmatched} unmatched, max shift "
                f"{self.max_shift:.3e}")


def pole_drift(reference: SurrogateModel,
               faulty: SurrogateModel) -> PoleDrift:
    """Match each reference pole to its nearest free faulty pole."""
    ref = list(np.asarray(reference.poles, dtype=complex))
    fau = list(np.asarray(faulty.poles, dtype=complex))
    pairs: List[Tuple[complex, complex, float]] = []
    # closest correspondences claim their partners first, so one runaway
    # pole cannot steal every match
    candidates = sorted(
        ((abs(p - q), i, j) for i, p in enumerate(ref)
         for j, q in enumerate(fau)),
        key=lambda t: t[0])
    used_ref: set = set()
    used_fau: set = set()
    for dist, i, j in candidates:
        if i in used_ref or j in used_fau:
            continue
        used_ref.add(i)
        used_fau.add(j)
        scale = max(abs(ref[i]), 1.0)
        pairs.append((complex(ref[i]), complex(fau[j]), float(dist / scale)))
    unmatched = (len(ref) - len(used_ref)) + (len(fau) - len(used_fau))
    pairs.sort(key=lambda t: (t[0].real, abs(t[0].imag), t[0].imag))
    return PoleDrift(pairs=tuple(pairs), unmatched=unmatched)


class SurrogateFitTechnique:
    """Campaign technique returning the circuit's fitted surrogate.

    Pure frequency-domain: the measurement is the
    :class:`SurrogateModel` itself, scored downstream by
    :class:`PoleDriftDetector`.  Per-circuit cost is one QZ
    factorisation plus the vector fit — no transient at all.
    """

    def __init__(self, input_source: str, output_node: str,
                 config: Optional[PrescreenConfig] = None,
                 dt: float = 1e-6, t_stop: float = 1e-3) -> None:
        self.input_source = input_source
        self.output_node = output_node
        self.config = config or PrescreenConfig()
        self.dt = dt
        self.t_stop = t_stop

    def __call__(self, circuit: Any) -> SurrogateModel:
        return fit_circuit(circuit, self.input_source, self.output_node,
                           config=self.config, dt=self.dt,
                           t_stop=self.t_stop)


class PoleDriftDetector:
    """Detection score = 1 when any pole drifted beyond the relative
    threshold (or the model order changed), else the largest observed
    shift normalised by the threshold, clamped to [0, 1)."""

    def __init__(self, rel_threshold: float = 0.05) -> None:
        if rel_threshold <= 0.0:
            raise ValueError("rel_threshold must be positive")
        self.rel_threshold = rel_threshold

    def __call__(self, reference: SurrogateModel,
                 measurement: SurrogateModel) -> float:
        drift = pole_drift(reference, measurement)
        if drift.unmatched > 0:
            return 1.0
        return min(1.0, drift.max_shift / self.rel_threshold)


__all__ = ["PoleDrift", "pole_drift", "SurrogateFitTechnique",
           "PoleDriftDetector"]
