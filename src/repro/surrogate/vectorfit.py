"""Vector fitting: stable pole/residue rational surrogates.

Implements the Gustavsen/Semlyen vector-fitting algorithm (rational
approximation of frequency-domain responses by iterative pole
relocation) for the SISO responses this repo works with: fit

    H(s)  ≈  Σ_i  r_i / (s - p_i)  +  d  +  e·s

to samples ``H(jω_k)`` taken from the MNA small-signal pencil (one
:class:`~repro.spice.linearize.FrequencyPencil` factorisation serves the
whole sweep).  Each relocation iteration solves one real least-squares
system for the residues of ``σ(s)·H(s)`` and ``σ(s)`` simultaneously,
then replaces the poles by the zeros of ``σ`` (the eigenvalues of
``A - b·c̃ᵀ``); unstable poles are flipped into the left half plane, so
the returned model is stable by construction.

The fitted :class:`SurrogateModel` is the cheap stand-in for a full MNA
transient: ``transfer_function_at`` evaluates H anywhere in the s-plane,
``impulse_response`` is a closed-form sum of complex exponentials and
``transient`` marches an arbitrary sampled stimulus through the
pole-wise ZOH recurrence — O(steps · poles) instead of
O(steps · n²) for the dense MNA march.

References (see also ``/root/related``'s scikit-rf implementation the
ROADMAP names as the porting source — re-derived here for the SISO
case, not copied):

* B. Gustavsen, A. Semlyen, "Rational Approximation of Frequency Domain
  Responses by Vector Fitting", IEEE Trans. Power Delivery 14(3), 1999.
* B. Gustavsen, "Improving the Pole Relocating Properties of Vector
  Fitting", IEEE Trans. Power Delivery 21(3), 2006.
* D. Deschrijver et al., "Macromodeling of Multiport Systems Using a
  Fast Implementation of the Vector Fitting Method", IEEE MWCL 18(6),
  2008.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np
import scipy.signal

from repro.errors import SurrogateError
from repro.obs.core import OBS
from repro.obs.core import span as obs_span

#: relative improvement below which pole relocation terminates early.
RELOCATION_TOL = 1e-6


@dataclass
class FitReport:
    """Diagnostics of one vector-fitting run."""

    n_iterations: int = 0
    #: relative rms residual after each pole-relocation iteration (the
    #: residual of the residue fit with that iteration's poles).
    rms_history: List[float] = field(default_factory=list)
    #: iteration index whose poles produced the returned (best) model
    best_iteration: int = 0
    #: poles flipped into the LHP across all iterations
    n_flipped: int = 0
    converged: bool = False

    @property
    def rms_error(self) -> float:
        """Relative rms residual of the returned model."""
        if not self.rms_history:
            return float("inf")
        return self.rms_history[self.best_iteration]

    def summary(self) -> str:
        return (f"vector fit: {self.n_iterations} iterations, "
                f"rms {self.rms_error:.3e} (best at iteration "
                f"{self.best_iteration}), {self.n_flipped} poles flipped"
                + (", converged" if self.converged else ""))


@dataclass
class SurrogateModel:
    """A stable pole/residue rational model of one transfer path.

    ``H(s) = Σ residues_i / (s - poles_i) + constant + proportional·s``;
    complex poles come in conjugate pairs so every response is real.
    """

    poles: np.ndarray                 # complex, all Re < 0
    residues: np.ndarray              # complex, conjugate-paired like poles
    constant: float = 0.0             # d term
    proportional: float = 0.0         # e term
    report: Optional[FitReport] = field(default=None, repr=False,
                                        compare=False)

    def __post_init__(self) -> None:
        self.poles = np.asarray(self.poles, dtype=complex)
        self.residues = np.asarray(self.residues, dtype=complex)
        if self.poles.shape != self.residues.shape:
            raise ValueError("poles and residues must pair up")

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        return len(self.poles)

    def is_stable(self) -> bool:
        return bool(np.all(self.poles.real < 0.0))

    def transfer_function_at(self, s) -> Any:
        """H(s) at a scalar or array of s-plane points."""
        s_arr = np.asarray(s, dtype=complex)
        scalar = s_arr.ndim == 0
        pts = np.atleast_1d(s_arr)
        h = np.sum(self.residues[None, :]
                   / (pts[:, None] - self.poles[None, :]), axis=1)
        h = h + self.constant + self.proportional * pts
        return complex(h[0]) if scalar else h

    def impulse_response(self, t: np.ndarray) -> np.ndarray:
        """h(t) = Σ r_i·exp(p_i·t) for t ≥ 0 (the delta contributions of
        the constant/proportional terms are not representable on a
        sample grid and are omitted)."""
        t = np.asarray(t, dtype=float)
        h = np.sum(self.residues[None, :]
                   * np.exp(t[:, None] * self.poles[None, :]), axis=1)
        return np.real(h)

    def transient(self, u: np.ndarray, dt: float,
                  method: str = "zoh") -> np.ndarray:
        """March a sampled stimulus through the pole-wise recurrence.

        Each pole is an independent first-order state
        ``ẋ_i = p_i·x_i + r_i·u`` discretised per ``method``:

        ``"zoh"``
            exact zero-order hold — ``x_i[k] = α_i·x_i[k-1] +
            β_i·u[k-1]`` with ``α_i = exp(p_i·dt)``,
            ``β_i = r_i·(α_i - 1)/p_i``: the continuous-time truth for
            a piecewise-constant stimulus.
        ``"be"`` / ``"trap"``
            the backward-Euler / trapezoidal companion recurrences —
            the *same* discretisation the MNA engine marches, and
            (because BE/trap commute with diagonalisation) pole-wise
            identical to the full-matrix march of the fitted system.
            The surrogate prescreen uses these so its numerical damping
            matches the reference transient it stands in for, instead
            of out-simulating it on ringing poles.

        The recurrences run through :func:`scipy.signal.lfilter` (one
        IIR filter per pole), so the march costs O(steps · poles) with
        C-speed inner loops.  The constant term adds ``d·u[k]``; the
        proportional term adds ``e·(u[k] - u[k-1])/dt``.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        u = np.asarray(u, dtype=float)
        y = np.zeros(len(u))
        for pole, residue in zip(self.poles, self.residues):
            if method == "zoh":
                alpha = np.exp(pole * dt)
                num = [0.0, residue * (alpha - 1.0) / pole]
                den = [1.0, -alpha]
            elif method == "be":
                scale = 1.0 - pole * dt
                num = [residue * dt / scale]
                den = [1.0, -1.0 / scale]
            elif method == "trap":
                scale = 1.0 - 0.5 * pole * dt
                gain = 0.5 * residue * dt / scale
                num = [gain, gain]
                den = [1.0, -(1.0 + 0.5 * pole * dt) / scale]
            else:
                raise ValueError(f"unknown method {method!r}; "
                                 f"known: zoh, be, trap")
            x = scipy.signal.lfilter(num, den, u)
            y = y + np.real(x)
        if self.constant:
            y = y + self.constant * u
        if self.proportional:
            du = np.empty_like(u)
            du[0] = 0.0
            np.subtract(u[1:], u[:-1], out=du[1:])
            y = y + self.proportional * du / dt
        return y

    # ------------------------------------------------------------------
    def canonical(self) -> "SurrogateModel":
        """A copy with poles (and their residues) in canonical order:
        sorted by (Re, |Im|, Im) — what the golden store pins."""
        order = np.lexsort((self.poles.imag, np.abs(self.poles.imag),
                            self.poles.real))
        return SurrogateModel(self.poles[order], self.residues[order],
                              self.constant, self.proportional,
                              report=self.report)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe canonical payload (golden-store friendly)."""
        model = self.canonical()
        return {
            "kind": "surrogate_model",
            "order": model.order,
            "poles_re": [float(p.real) for p in model.poles],
            "poles_im": [float(p.imag) for p in model.poles],
            "residues_re": [float(r.real) for r in model.residues],
            "residues_im": [float(r.imag) for r in model.residues],
            "constant": float(model.constant),
            "proportional": float(model.proportional),
            "stable": model.is_stable(),
            "rms_error": (float(model.report.rms_error)
                          if model.report is not None else None),
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "SurrogateModel":
        poles = np.asarray(doc["poles_re"]) + 1j * np.asarray(doc["poles_im"])
        residues = (np.asarray(doc["residues_re"])
                    + 1j * np.asarray(doc["residues_im"]))
        return SurrogateModel(poles, residues,
                              constant=float(doc.get("constant", 0.0)),
                              proportional=float(doc.get("proportional",
                                                         0.0)))

    def describe(self) -> str:
        return (f"SurrogateModel(order={self.order}, "
                f"stable={self.is_stable()}, d={self.constant:.3g}, "
                f"e={self.proportional:.3g})")


class VectorFitter:
    """Fits :class:`SurrogateModel`\\ s to sampled frequency responses.

    Parameters
    ----------
    n_poles:
        Model order.  Poles start as ``n_poles // 2`` weakly damped
        complex-conjugate pairs log-spaced over the sampled band (plus
        one real pole when odd) and are relocated from there.
    n_iterations:
        Pole-relocation iteration budget.  Relocation terminates early
        when the relative rms residual stops improving by more than
        ``relocation_tol``; the *best* iteration's model is returned
        either way, so the reported residual never regresses.
    include_constant / include_proportional:
        Fit the ``d`` and ``e·s`` terms.  The proportional term is off
        by default — the node-voltage transfer paths fitted here are
        strictly proper.
    enforce_stability:
        Flip any relocated pole with ``Re ≥ 0`` into the left half
        plane (the classic vector-fitting stability enforcement).  The
        final model is stable whenever this is on.
    """

    def __init__(self, n_poles: int = 8, n_iterations: int = 12,
                 include_constant: bool = True,
                 include_proportional: bool = False,
                 enforce_stability: bool = True,
                 relocation_tol: float = RELOCATION_TOL) -> None:
        if n_poles < 1:
            raise ValueError("n_poles must be >= 1")
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.n_poles = n_poles
        self.n_iterations = n_iterations
        self.include_constant = include_constant
        self.include_proportional = include_proportional
        self.enforce_stability = enforce_stability
        self.relocation_tol = relocation_tol

    # ------------------------------------------------------------------
    def initial_poles(self, omega: np.ndarray) -> np.ndarray:
        """Weakly damped starting poles spread over the sampled band."""
        w_min = max(float(np.min(omega)), 1e-12)
        w_max = max(float(np.max(omega)), w_min * 10.0)
        n_pairs = self.n_poles // 2
        poles: List[complex] = []
        if n_pairs:
            centres = np.logspace(np.log10(w_min), np.log10(w_max), n_pairs)
            for w in centres:
                poles.append(complex(-0.01 * w, w))
                poles.append(complex(-0.01 * w, -w))
        if self.n_poles % 2:
            poles.append(complex(-np.sqrt(w_min * w_max), 0.0))
        return np.asarray(poles, dtype=complex)

    def fit(self, s_points: Sequence[complex],
            response: Sequence[complex]) -> SurrogateModel:
        """Fit a stable rational model to ``response`` sampled at the
        (typically ``jω``) points ``s_points``.

        Raises :class:`~repro.errors.SurrogateError` for degenerate
        inputs (too few samples, non-finite response) — never returns a
        silently broken model.
        """
        s = np.asarray(s_points, dtype=complex)
        f = np.asarray(response, dtype=complex)
        if s.ndim != 1 or s.shape != f.shape:
            raise SurrogateError("s_points and response must be 1-D and "
                                 "the same length")
        n_free = self.n_poles + int(self.include_constant) \
            + int(self.include_proportional)
        if len(s) < 2 * n_free:
            raise SurrogateError(
                f"{len(s)} samples cannot determine {n_free} model terms; "
                f"sample at least {2 * n_free} frequencies")
        if not np.all(np.isfinite(f)) or not np.all(np.isfinite(s)):
            raise SurrogateError("response contains non-finite samples")
        scale = float(np.max(np.abs(f)))
        if scale <= 0.0:
            # an identically-zero response *is* representable
            report = FitReport(n_iterations=0, rms_history=[0.0],
                               converged=True)
            poles = self.initial_poles(np.abs(s.imag) + np.abs(s.real))
            return SurrogateModel(poles, np.zeros_like(poles),
                                  report=report)

        omega = np.abs(s.imag)
        if not np.any(omega > 0.0):
            omega = np.abs(s.real)
        poles = self.initial_poles(omega[omega > 0.0]
                                   if np.any(omega > 0.0) else
                                   np.asarray([1.0]))

        report = FitReport()
        best_rms = np.inf
        best: Optional[SurrogateModel] = None
        with obs_span("surrogate.fit", n_poles=self.n_poles,
                      n_samples=len(s)) as sp:
            for iteration in range(self.n_iterations):
                poles, flipped = self._relocate(s, f, poles)
                report.n_flipped += flipped
                model = self._residue_fit(s, f, poles)
                rms = self._rms(s, f, model, scale)
                report.rms_history.append(rms)
                report.n_iterations = iteration + 1
                if rms < best_rms:
                    best_rms = rms
                    best = model
                    report.best_iteration = iteration
                    if rms < 10 * np.finfo(float).eps:
                        report.converged = True
                        break
                else:
                    # no further improvement: terminate, keep the best
                    report.converged = True
                    break
                if iteration and report.rms_history[-2] - rms \
                        <= self.relocation_tol * report.rms_history[-2]:
                    report.converged = True
                    break
            sp.set(rms=best_rms, iterations=report.n_iterations)
        if OBS.enabled:
            OBS.metrics.counter("surrogate.fits").inc()
        if best is None:  # pragma: no cover - defensive, loop always runs
            raise SurrogateError("vector fitting produced no model")
        best.report = report
        return best.canonical()

    # ------------------------------------------------------------------
    def _basis(self, s: np.ndarray,
               poles: np.ndarray) -> np.ndarray:
        """Real-coefficient partial-fraction basis: one column per pole;
        conjugate pairs are mapped to the (sum, j·difference) columns so
        the least-squares solution vector is real."""
        n = len(poles)
        phi = np.zeros((len(s), n), dtype=complex)
        i = 0
        while i < n:
            p = poles[i]
            if abs(p.imag) > 0.0:
                # conjugate pair occupies columns i, i+1
                phi[:, i] = 1.0 / (s - p) + 1.0 / (s - np.conj(p))
                phi[:, i + 1] = 1j / (s - p) - 1j / (s - np.conj(p))
                i += 2
            else:
                phi[:, i] = 1.0 / (s - p)
                i += 1
        return phi

    def _pair_residues(self, poles: np.ndarray,
                       x: np.ndarray) -> np.ndarray:
        """Map the real solution vector back to conjugate-paired complex
        residues (inverse of the :meth:`_basis` column mapping)."""
        residues = np.zeros(len(poles), dtype=complex)
        i = 0
        while i < len(poles):
            if abs(poles[i].imag) > 0.0:
                residues[i] = complex(x[i], x[i + 1])
                residues[i + 1] = complex(x[i], -x[i + 1])
                i += 2
            else:
                residues[i] = complex(x[i], 0.0)
                i += 1
        return residues

    @staticmethod
    def _stack_real(a: np.ndarray, rhs: np.ndarray):
        """Complex LS system → equivalent real system (Re/Im stacked)."""
        return (np.vstack([a.real, a.imag]),
                np.concatenate([rhs.real, rhs.imag]))

    def _extra_columns(self, s: np.ndarray) -> np.ndarray:
        cols = []
        if self.include_constant:
            cols.append(np.ones(len(s), dtype=complex))
        if self.include_proportional:
            cols.append(s.astype(complex))
        if not cols:
            return np.zeros((len(s), 0), dtype=complex)
        return np.stack(cols, axis=1)

    def _relocate(self, s: np.ndarray, f: np.ndarray,
                  poles: np.ndarray):
        """One Gustavsen relocation step: solve for the σ-residues, take
        the zeros of σ as the new poles, flip unstable ones."""
        phi = self._basis(s, poles)
        extra = self._extra_columns(s)
        n_sigma = len(poles)
        # unknowns: [residues of σ·f | d | e | residues of σ (c̃)]
        a_mat = np.hstack([phi, extra, -(f[:, None] * phi)])
        # column scaling keeps the system well-conditioned across the
        # decades a log sweep spans
        col_scale = np.maximum(np.linalg.norm(a_mat, axis=0), 1e-300)
        a_real, rhs_real = self._stack_real(a_mat / col_scale[None, :], f)
        x, *_ = np.linalg.lstsq(a_real, rhs_real, rcond=None)
        x = x / col_scale
        sigma_res = self._pair_residues(poles, x[-n_sigma:])

        # zeros of σ(s) = 1 + Σ c̃_i/(s - p_i): eigenvalues of A - b·c̃ᵀ
        # in the real-block realisation of the pole set
        a_block = np.zeros((n_sigma, n_sigma))
        b_vec = np.zeros(n_sigma)
        c_vec = np.zeros(n_sigma)
        i = 0
        while i < n_sigma:
            p = poles[i]
            if abs(p.imag) > 0.0:
                a_block[i, i] = a_block[i + 1, i + 1] = p.real
                a_block[i, i + 1] = p.imag
                a_block[i + 1, i] = -p.imag
                b_vec[i] = 2.0
                c_vec[i] = sigma_res[i].real
                c_vec[i + 1] = sigma_res[i].imag
                i += 2
            else:
                a_block[i, i] = p.real
                b_vec[i] = 1.0
                c_vec[i] = sigma_res[i].real
                i += 1
        new_poles = np.linalg.eigvals(a_block - np.outer(b_vec, c_vec))

        flipped = 0
        if self.enforce_stability:
            unstable = new_poles.real >= 0.0
            flipped = int(np.count_nonzero(unstable))
            new_poles = np.where(unstable,
                                 -new_poles.real + 1j * new_poles.imag,
                                 new_poles)
            # keep a strictly negative real part so the recurrence and
            # the impulse response never blow up
            tiny = new_poles.real >= -1e-16
            if np.any(tiny):
                floor = -1e-6 * np.maximum(np.abs(new_poles.imag), 1.0)
                new_poles = np.where(tiny,
                                     floor + 1j * new_poles.imag,
                                     new_poles)
        return _conjugate_pairs(new_poles), flipped

    def _residue_fit(self, s: np.ndarray, f: np.ndarray,
                     poles: np.ndarray) -> SurrogateModel:
        """Residues (and d/e terms) for a *fixed* pole set."""
        phi = self._basis(s, poles)
        extra = self._extra_columns(s)
        a_mat = np.hstack([phi, extra])
        col_scale = np.maximum(np.linalg.norm(a_mat, axis=0), 1e-300)
        a_real, rhs_real = self._stack_real(a_mat / col_scale[None, :], f)
        x, *_ = np.linalg.lstsq(a_real, rhs_real, rcond=None)
        x = x / col_scale
        residues = self._pair_residues(poles, x[:len(poles)])
        idx = len(poles)
        constant = float(x[idx]) if self.include_constant else 0.0
        if self.include_constant:
            idx += 1
        proportional = float(x[idx]) if self.include_proportional else 0.0
        return SurrogateModel(poles, residues, constant=constant,
                              proportional=proportional)

    @staticmethod
    def _rms(s: np.ndarray, f: np.ndarray, model: SurrogateModel,
             scale: float) -> float:
        fitted = model.transfer_function_at(s)
        return float(np.sqrt(np.mean(np.abs(fitted - f) ** 2)) / scale)


def _conjugate_pairs(poles: np.ndarray, imag_tol: float = 1e-9
                     ) -> np.ndarray:
    """Clean numerical noise: force near-real poles real and exact
    conjugate symmetry on the rest, pairs adjacent (p, p̄)."""
    poles = np.asarray(poles, dtype=complex)
    real_mask = np.abs(poles.imag) <= imag_tol * np.maximum(
        np.abs(poles.real), 1.0)
    reals = sorted(poles[real_mask].real)
    complexes = poles[~real_mask]
    # one representative per pair: positive imaginary part
    reps = sorted(complexes[complexes.imag > 0.0],
                  key=lambda p: (p.imag, p.real))
    out: List[complex] = []
    for p in reps:
        out.append(p)
        out.append(np.conj(p))
    # odd leftovers (a pair whose mirror got flipped real) become real
    n_orphans = len(complexes) - 2 * len(reps)
    for _ in range(max(0, n_orphans)):
        reals.append(float(np.mean([p.real for p in reps]) if reps
                           else -1.0))
    out.extend(complex(r, 0.0) for r in sorted(reals))
    return np.asarray(out, dtype=complex)


def sample_frequencies(f_min: float, f_max: float,
                       n_points: int = 40) -> np.ndarray:
    """A log-spaced ``jω`` sample grid covering ``[f_min, f_max]`` Hz."""
    if f_min <= 0 or f_max <= f_min:
        raise ValueError("need 0 < f_min < f_max")
    if n_points < 2:
        raise ValueError("n_points must be >= 2")
    freqs = np.logspace(np.log10(f_min), np.log10(f_max), n_points)
    return 2j * np.pi * freqs


__all__ = ["VectorFitter", "SurrogateModel", "FitReport",
           "sample_frequencies", "RELOCATION_TOL"]
