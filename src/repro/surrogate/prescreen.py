"""Surrogate prescreen: classify the obvious faults, escalate the rest.

The campaign-side consumer of :mod:`repro.surrogate.vectorfit`.  For
each fault the prescreen

1. injects the fault and linearises the faulty circuit at its DC
   operating point (``small_signal_matrices``),
2. samples the input→output transfer function on a log frequency grid
   through one :class:`~repro.spice.linearize.FrequencyPencil`
   factorisation,
3. vector-fits a stable :class:`~repro.surrogate.vectorfit.SurrogateModel`
   and marches the technique's stimulus through the pole-wise recurrence
   (O(steps · poles) instead of a full MNA transient),
4. post-processes the surrogate response exactly the way the technique
   post-processes a real one and scores it with the campaign's detector
   against the surrogate *reference* (the fault-free circuit through the
   same pipeline, so systematic fit error largely cancels).

A fault is decided by the surrogate only when its score clears the
detection threshold by more than the configured **margin** on either
side; scores inside the band — and every fault whose operating point,
fit or error bound fails — fall through to the full MNA transient.
Escalation is always safe: the surrogate never invents a verdict, it
only skips work whose outcome is not in doubt.

Techniques opt in by exposing ``surrogate_workload(target)`` returning a
:class:`SurrogateWorkload`; techniques without the hook simply escalate
everything (the campaign behaves exactly as if no prescreen were
configured).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

import numpy as np

from repro.errors import SurrogateError
from repro.obs.core import OBS
from repro.obs.core import span as obs_span
from repro.signals.waveform import Waveform
from repro.spice.linearize import (
    FrequencyPencil,
    _input_vector,
    _output_vector,
    small_signal_matrices,
)
from repro.surrogate.vectorfit import SurrogateModel, VectorFitter


@dataclass(frozen=True)
class PrescreenConfig:
    """Tunables of the surrogate prescreen (frozen: participates in
    cache/checkpoint content keys via :meth:`describe`).

    ``margin`` is the half-width of the escalation band around the
    campaign threshold: a surrogate score within ``threshold ± margin``
    is never trusted.  ``max_fit_rms`` bounds the relative rms residual
    of an acceptable fit — a worse fit escalates the fault instead of
    classifying through a model that does not even match its own
    frequency samples.
    """

    margin: float = 0.1
    n_poles: int = 10
    n_iterations: int = 12
    n_samples: int = 60
    max_fit_rms: float = 1e-3
    f_min: Optional[float] = None
    f_max: Optional[float] = None

    def __post_init__(self) -> None:
        if self.margin < 0.0:
            raise ValueError("margin must be non-negative")
        if self.n_poles < 1 or self.n_iterations < 1:
            raise ValueError("n_poles and n_iterations must be >= 1")
        if self.n_samples < 2:
            raise ValueError("n_samples must be >= 2")
        if self.max_fit_rms <= 0.0:
            raise ValueError("max_fit_rms must be positive")
        for name in ("f_min", "f_max"):
            value = getattr(self, name)
            if value is not None and value <= 0.0:
                raise ValueError(f"{name} must be positive")

    def describe(self) -> str:
        """Canonical text identity (cache/checkpoint key component)."""
        return ("surrogate-prescreen/1:"
                f"margin={self.margin:g},n_poles={self.n_poles},"
                f"n_iterations={self.n_iterations},"
                f"n_samples={self.n_samples},"
                f"max_fit_rms={self.max_fit_rms:g},"
                f"f_min={'auto' if self.f_min is None else f'{self.f_min:g}'},"
                f"f_max={'auto' if self.f_max is None else f'{self.f_max:g}'}")

    def fitter(self) -> VectorFitter:
        return VectorFitter(n_poles=self.n_poles,
                            n_iterations=self.n_iterations)


@dataclass
class SurrogateWorkload:
    """What a technique must describe for the surrogate to stand in.

    ``prepare`` (optional) maps a faulty circuit copy to the circuit the
    technique actually simulates (e.g. wiring the PRBS into the input
    source); ``postprocess`` maps the simulated output waveform to the
    measurement object the campaign's detector consumes (e.g. the
    windowed correlation, or the raw sample array).  ``method`` names
    the integration method the technique's transient uses ("be" or
    "trap"): the surrogate marches the *same* companion recurrence per
    pole, so its numerical damping matches the reference simulation it
    stands in for — critical on ringing (underdamped) paths, where an
    exact-ZOH surrogate would out-simulate the MNA march and skew
    detector scores.
    """

    source_name: str
    output_node: str
    dt: float
    t_stop: float
    stimulus: Waveform
    postprocess: Callable[[Waveform], Any]
    prepare: Optional[Callable[[Any], Any]] = None
    method: str = "be"

    def prepared(self, circuit: Any) -> Any:
        return circuit if self.prepare is None else self.prepare(circuit)


def sample_grid(config: PrescreenConfig, dt: float,
                t_stop: float) -> np.ndarray:
    """The ``jω`` sample points for a workload's time grid: log-spaced
    from well below ``1/t_stop`` up to just under Nyquist."""
    f_max = config.f_max if config.f_max is not None else 0.45 / dt
    f_min = config.f_min if config.f_min is not None else \
        max(1.0 / (20.0 * t_stop), f_max * 1e-9)
    if f_min >= f_max:
        raise SurrogateError(
            f"degenerate frequency band [{f_min:g}, {f_max:g}] Hz")
    freqs = np.logspace(np.log10(f_min), np.log10(f_max), config.n_samples)
    return 2j * np.pi * freqs


def fit_circuit(circuit: Any, input_source: str, output_node: str,
                config: Optional[PrescreenConfig] = None,
                fitter: Optional[VectorFitter] = None,
                s_points: Optional[np.ndarray] = None,
                dt: float = 1e-6, t_stop: float = 1e-3) -> SurrogateModel:
    """Fit a surrogate to one circuit's input→output small-signal path.

    Linearises at the DC operating point, samples the transfer function
    through one :class:`FrequencyPencil` factorisation and vector-fits.
    Raises :class:`~repro.errors.SurrogateError` when the fit residual
    exceeds ``config.max_fit_rms`` (escalation, never a bad model).
    """
    config = config or PrescreenConfig()
    model, _ = _fit_path(circuit, input_source, output_node, config,
                         fitter or config.fitter(),
                         s_points if s_points is not None
                         else sample_grid(config, dt, t_stop))
    return model


def _fit_path(circuit: Any, source_name: str, output_node: str,
              config: PrescreenConfig, fitter: VectorFitter,
              s_points: np.ndarray):
    """(model, y_op) for one circuit, or raise :class:`SurrogateError`.

    Any failure along the way — a Newton OP that will not bias, a
    degenerate sweep, a fit over budget — surfaces as
    :class:`SurrogateError` so the caller escalates uniformly.
    """
    try:
        assembler, g, c, op_vector = small_signal_matrices(circuit)
        b = _input_vector(assembler, source_name)
        c_vec = _output_vector(assembler, output_node)
        pencil = FrequencyPencil(g, c)
        response = pencil.transfer(b, c_vec, s_points)
    except SurrogateError:
        raise
    except Exception as exc:  # noqa: BLE001 - uniform escalation signal
        raise SurrogateError(
            f"small-signal sampling failed: "
            f"{type(exc).__name__}: {exc}") from exc
    model = fitter.fit(s_points, response)
    rms = model.report.rms_error if model.report is not None else np.inf
    if rms > config.max_fit_rms:
        raise SurrogateError(
            f"fit residual {rms:.3e} exceeds the declared bound "
            f"{config.max_fit_rms:g}")
    return model, float(np.real(c_vec @ op_vector))


def surrogate_measurement(circuit: Any, workload: SurrogateWorkload,
                          config: PrescreenConfig, fitter: VectorFitter,
                          s_points: np.ndarray,
                          u: Optional[np.ndarray] = None) -> Any:
    """The technique-equivalent measurement via the surrogate.

    The full response is the small-signal superposition
    ``y(t) = y_op + (h * (u - u(0)))(t)``: the operating point the MNA
    transient starts from, plus the fitted model's response to the
    stimulus deviation — marched through the pole-wise recurrence.
    ``u`` accepts the pre-sampled stimulus (every fault shares it, so
    the prescreen samples once per campaign instead of once per fault).
    """
    prepared = workload.prepared(circuit)
    model, y_op = _fit_path(prepared, workload.source_name,
                            workload.output_node, config, fitter, s_points)
    if u is None:
        u = sample_stimulus(workload)
    y = y_op + model.transient(u - u[0], workload.dt,
                               method=workload.method)
    return workload.postprocess(Waveform(y, workload.dt, t0=0.0,
                                         name=workload.output_node))


def sample_stimulus(workload: SurrogateWorkload) -> np.ndarray:
    """The stimulus on the workload's uniform time grid."""
    n = int(round(workload.t_stop / workload.dt)) + 1
    times = workload.dt * np.arange(n)
    return np.asarray(workload.stimulus(times), dtype=float)


def waveform_source(circuit: Any, dt: float, t_stop: float):
    """The unique time-varying voltage source of a circuit, as
    ``(name, Waveform)`` — how signature-style techniques whose stimulus
    is baked into the netlist recover it for the surrogate.

    Callable source values are sampled onto the ``(dt, t_stop)`` grid;
    a circuit with zero or several time-varying sources raises
    :class:`SurrogateError` (escalate, do not guess).
    """
    from repro.spice.elements import VoltageSource
    candidates = []
    for elem in circuit.elements:
        if isinstance(elem, VoltageSource) \
                and not isinstance(elem.value, (int, float)):
            candidates.append(elem)
    if len(candidates) != 1:
        raise SurrogateError(
            f"expected exactly one time-varying voltage source, found "
            f"{len(candidates)} in {getattr(circuit, 'name', circuit)!r}")
    elem = candidates[0]
    value = elem.value
    if isinstance(value, Waveform):
        return elem.name, value
    return elem.name, Waveform.from_function(
        lambda t: np.asarray([value(float(ti)) for ti in np.atleast_1d(t)]),
        dt, t_stop, name=elem.name)


class SurrogatePrescreen:
    """The campaign stage: split a fault universe into surrogate-decided
    verdicts and escalations.

    :meth:`classify` returns one slot per fault — a finished
    :class:`~repro.faults.campaign.FaultOutcome` with
    ``decided_by="surrogate"`` for faults whose surrogate score clears
    the margin band, ``None`` for everything that must run through the
    full MNA transient.  It runs entirely in the campaign parent
    process, before the reference simulation and any worker dispatch.
    """

    def __init__(self, technique: Callable[[Any], Any],
                 detector: Callable[[Any, Any], float],
                 threshold: float,
                 config: Optional[PrescreenConfig] = None) -> None:
        self.technique = technique
        self.detector = detector
        self.threshold = threshold
        self.config = config or PrescreenConfig()

    # ------------------------------------------------------------------
    def classify(self, target: Any, faults: List[Any]
                 ) -> List[Optional[Any]]:
        from repro.faults.campaign import FaultOutcome
        from repro.faults.injector import inject

        verdicts: List[Optional[Any]] = [None] * len(faults)
        hook = getattr(self.technique, "surrogate_workload", None)
        if hook is None:
            if OBS.enabled:
                OBS.metrics.counter("surrogate.prescreen.unsupported").inc()
            return verdicts

        config = self.config
        threshold = self.threshold
        with obs_span("surrogate.prescreen", n_faults=len(faults),
                      margin=config.margin) as sp:
            try:
                workload = hook(target)
                s_points = sample_grid(config, workload.dt,
                                       workload.t_stop)
                fitter = config.fitter()
                u = sample_stimulus(workload)
                reference = surrogate_measurement(target, workload, config,
                                                  fitter, s_points, u=u)
            except Exception:  # noqa: BLE001 - no reference, no verdicts
                if OBS.enabled:
                    OBS.metrics.counter(
                        "surrogate.prescreen.reference_failures").inc()
                return verdicts

            n_decided = n_margin = n_failed = 0
            for i, fault in enumerate(faults):
                t0 = time.perf_counter()
                try:
                    faulty = inject(target, fault)
                    measurement = surrogate_measurement(
                        faulty, workload, config, fitter, s_points, u=u)
                    score = float(self.detector(reference, measurement))
                    score = min(1.0, max(0.0, score))
                except Exception:  # noqa: BLE001 - transient owns it
                    n_failed += 1
                    continue
                if abs(score - threshold) <= config.margin:
                    # inside the band: the surrogate is not trusted here
                    n_margin += 1
                    continue
                n_decided += 1
                verdicts[i] = FaultOutcome(
                    fault=fault,
                    detection=score,
                    detected=score >= threshold,
                    elapsed_s=time.perf_counter() - t0,
                    worker_pid=os.getpid(),
                    decided_by="surrogate",
                )
            sp.set(decided=n_decided, escalated_margin=n_margin,
                   escalated_failures=n_failed)
            if OBS.enabled:
                m = OBS.metrics
                m.counter("surrogate.prescreen.decided").inc(n_decided)
                m.counter("surrogate.prescreen.escalated").inc(
                    n_margin + n_failed)
                if n_failed:
                    m.counter("surrogate.prescreen.failures").inc(n_failed)
        return verdicts


__all__ = ["PrescreenConfig", "SurrogateWorkload", "SurrogatePrescreen",
           "fit_circuit", "surrogate_measurement", "sample_grid",
           "sample_stimulus", "waveform_source"]
