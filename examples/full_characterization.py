"""Full ADC characterisation — the paper's Figure 2, on your terminal.

Servo-measures every code transition of the dual-slope ADC, computes
offset / gain / INL / DNL against the macro's specification and draws
the DNL-vs-code strip chart.

Run:  python examples/full_characterization.py
"""

import numpy as np

from repro.adc import DualSlopeADC
from repro.adc.calibration import (
    SPEC_DNL_LSB,
    SPEC_GAIN_LSB,
    SPEC_INL_LSB,
    SPEC_OFFSET_LSB,
)
from repro.adc.histogram import characterize_servo
from repro.core.diagnosis import Symptoms, diagnose


def dnl_chart(dnl: np.ndarray, width_per_code: int = 1) -> str:
    """Figure 2 as ASCII: one column per code, rows are DNL levels."""
    levels = np.arange(1.25, -1.26, -0.25)
    lines = []
    for level in levels:
        marks = []
        for value in dnl:
            if level > 0:
                marks.append("#" if value >= level else " ")
            elif level < 0:
                marks.append("#" if value <= level else " ")
            else:
                marks.append("-")
        lines.append(f"{level:+5.2f} |" + "".join(
            m * width_per_code for m in marks))
    lines.append("      +" + "-" * (len(dnl) * width_per_code))
    lines.append("       input code equivalent 0 to 100")
    return "\n".join(lines)


def main() -> None:
    adc = DualSlopeADC()
    print(f"characterising: {adc.describe()}")
    ch = characterize_servo(adc)

    print()
    print("metric            measured     spec     verdict")
    rows = [
        ("zero offset (LSB)", abs(ch.offset_error_lsb), SPEC_OFFSET_LSB),
        ("gain error  (LSB)", abs(ch.gain_error_lsb), SPEC_GAIN_LSB),
        ("max INL     (LSB)", ch.max_inl_lsb, SPEC_INL_LSB),
        ("max DNL     (LSB)", ch.max_dnl_lsb, SPEC_DNL_LSB),
    ]
    for name, measured, spec in rows:
        verdict = "PASS" if measured <= spec else "FAIL"
        print(f"{name:18s} {measured:8.2f} {spec:8.1f}     {verdict}")
    print(f"missing codes: {ch.missing_codes or 'none'}")
    print()
    print("DNL vs input code (Figure 2):")
    print(dnl_chart(ch.dnl_lsb))
    print()

    symptoms = Symptoms.from_characterization(ch)
    print(diagnose(symptoms).summary())


if __name__ == "__main__":
    main()
