"""Quickstart: run the paper's on-chip quick BIST on a dual-slope ADC.

The flow mirrors the paper's three test ranges:

1. analogue — step fall-time table + 6-point ramp check,
2. digital — conversion timing and the 10 µs ↔ 10 mV relationship,
3. compressed — MISR signature + 2-bit analogue signature.

Run:  python examples/quickstart.py
"""

from repro.adc import DualSlopeADC
from repro.core import BISTController


def main() -> None:
    adc = DualSlopeADC()
    print(adc.describe())
    print()

    # A couple of conversions, to see the macro at work.
    for v_in in (0.0, 1.25, 2.5):
        trace = adc.convert(v_in)
        print(f"convert({v_in:4.2f} V) -> code {trace.code:3d}  "
              f"({1e3 * trace.conversion_time_s:.2f} ms)")
    print()

    # The complete quick BIST.
    controller = BISTController()
    report = controller.run_all(adc)

    print("analogue test range")
    print(report.analog.table())
    print(f"ramp codes: {report.analog.ramp_codes} "
          f"(expected {report.analog.ramp_expected_codes})")
    print()
    print(report.digital.summary())
    print(report.compressed.summary())
    print()
    print(report.summary())

    # And the same BIST rejecting a broken device.
    broken = adc.copy()
    broken.integrator.gain = 0.5
    print()
    print("same device with a gross integrator defect:")
    print(controller.run_all(broken).summary())


if __name__ == "__main__":
    main()
