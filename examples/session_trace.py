"""Observability walkthrough: one Session across heterogeneous runs.

Runs a transient, a fault campaign and a logic-BIST session through a
single :class:`repro.Session`, then prints the unified views every run
shares — ``summary()``, the flat event log, and the counter registry.

Run with ``PYTHONPATH=src python examples/session_trace.py``.
"""

from repro import Circuit, Session
from repro.faults import StuckAtFault


def rc_lowpass() -> Circuit:
    ckt = Circuit("rc_lowpass")
    ckt.vsource("VIN", "in", "0", lambda t: 5.0 if t > 0 else 0.0)
    ckt.resistor("R1", "in", "out", 1e3)
    ckt.capacitor("C1", "out", "0", 1e-6)
    return ckt


def divider() -> Circuit:
    ckt = Circuit("divider")
    ckt.vsource("V1", "top", "0", 5.0)
    ckt.resistor("R1", "top", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt


def measure_mid(ckt):
    from repro.spice import dc_operating_point
    v, _ = dc_operating_point(ckt)
    return v["mid"]


def main() -> None:
    s = Session(name="walkthrough")

    # three very different workloads, one reporting shape
    step = s.transient(rc_lowpass(), t_stop=5e-3, dt=1e-6, record=["out"])
    cover = s.run_campaign(
        measure_mid, lambda ref, m: 1.0 if abs(m - ref) > 0.5 else 0.0,
        divider(),
        [StuckAtFault.sa0("mid"), StuckAtFault.sa1("mid"),
         StuckAtFault.sa0("top"), StuckAtFault.sa1("top")],
        threshold=0.5)
    engine = s.bist(width=8, n_patterns=32)
    engine.learn(lambda x: (x * 3) & 0xFF)
    bist = s.run_bist(engine, lambda x: (x * 3) & 0xFF)

    for result in (step, cover, bist):
        print(result.summary())
        print("-" * 60)

    print("\nflat event log:")
    for ev in s.span_events():
        print(f"  {'  ' * ev['depth']}{ev['name']:24s} "
              f"{ev['duration_s'] * 1e3:8.2f} ms")

    print("\ncounters:")
    for name, value in sorted(s.metrics.counter_values().items()):
        print(f"  {name:36s} {value}")

    # the whole session as one terminal report (spans, hotspots,
    # metrics, notable events)
    print()
    print(s.report())


if __name__ == "__main__":
    main()
