"""Using the MNA circuit simulator directly.

The transient engine and small-signal extraction are general-purpose:
this example builds the paper's 13-transistor OP1, inspects its bias
point, extracts its closed-loop poles ("HSPICE .PZ"), steps it in the
time domain and finally runs the 15-transistor switched-capacitor
integrator for a handful of clock cycles.

Run:  python examples/circuit_simulation.py
"""

import numpy as np

from repro.circuits.op1 import op1_follower
from repro.circuits.sc_integrator import PAPER_DESIGN, sc_integrator_circuit
from repro.signals.sources import two_phase_clocks
from repro.spice import (
    dc_operating_point,
    extract_transfer_function,
    transient,
)
from repro.spice.mosfet import MOSFET


def main() -> None:
    # --- bias point ----------------------------------------------------
    circuit = op1_follower(input_value=2.5)
    print(f"netlist: {circuit!r}")
    voltages, op_vector = dc_operating_point(circuit)
    print("operating point (paper node numbering):")
    for node in map(str, range(1, 10)):
        if node in voltages:
            print(f"  node {node}: {voltages[node]:6.3f} V")
    print("device regions:")
    for mos in circuit.elements_of_type(MOSFET):
        d, g, s = (voltages.get(n, 0.0) for n in mos.nodes)
        print(f"  {mos.name:5s} {mos.operating_region(d, g, s)}")

    # --- small-signal extraction ----------------------------------------
    tf = extract_transfer_function(circuit, "VIN", "3", op_vector=op_vector,
                                   max_order=3)
    print()
    print(f"closed-loop model: order {tf.order}, "
          f"dc gain {tf.dc_gain():.4f}")
    for pole in tf.poles():
        print(f"  pole at {pole.real:12.3e} {pole.imag:+12.3e}j rad/s")

    # --- time domain ----------------------------------------------------
    step_circuit = op1_follower(
        input_value=lambda t: 2.2 if t < 50e-6 else 3.0)
    result = transient(step_circuit, t_stop=300e-6, dt=1e-6, record=["3"])
    out = result["3"]
    settle = out.settle_time(3.0, tolerance=0.03)
    print()
    print(f"step 2.2 -> 3.0 V: peak {out.peak():.2f} V, "
          f"settles at t = {1e6 * (settle or 0):.0f} us")

    # --- switched-capacitor integrator ----------------------------------
    n_cycles = 6
    dt = 50e-9
    duration = n_cycles * PAPER_DESIGN.clock_period_s
    phi1, phi2 = two_phase_clocks(PAPER_DESIGN.clock_period_s, duration,
                                  dt=dt, non_overlap=0.1)
    sc = sc_integrator_circuit(phi1, phi2, PAPER_DESIGN.v_ref - 0.5)
    result = transient(sc, t_stop=duration, dt=dt, record=["out"])
    out = result["out"]
    print()
    print("SC integrator output at each clock boundary "
          "(designed step: |v_in|/6.8 = 73.5 mV):")
    for k in range(1, n_cycles + 1):
        t = k * PAPER_DESIGN.clock_period_s - 2 * dt
        print(f"  cycle {k}: {out.value_at(t):.4f} V")


if __name__ == "__main__":
    main()
