"""Production screening: fabricate a batch, screen it with the quick
BIST, and diagnose the failures at the functional-macro level.

This is the workflow the paper's BIST exists for: every die runs the
three on-chip test ranges; failing dice get a macro-level diagnosis from
the error signature ("faulty chip diagnosis at a functional macro
level") without any external mixed-signal test equipment.

Run:  python examples/production_screening.py
"""

import random

from repro.adc import DualSlopeADC
from repro.adc.control import ControlState
from repro.adc.histogram import characterize_servo
from repro.core import BISTController, MonotonicityBIST
from repro.core.diagnosis import Symptoms, diagnose
from repro.experiments.e5_batch10 import GOOD_VARIATION
from repro.process import Batch, VariationModel

#: defects a bad lot might carry, and how we plant them
DEFECTS = {
    "integrator gain defect": lambda adc: setattr(adc.integrator, "gain", 0.6),
    "comparator offset defect": lambda adc: setattr(
        adc.comparator, "offset_v", 8 * adc.cal.lsb_v),
    "stuck control FSM": lambda adc: setattr(
        adc.control, "stuck_state", ControlState.INTEGRATE),
    "counter stuck bit": lambda adc: adc.counter.stuck_bits.update({3: 0}),
}


def fabricate_lot(n_good: int, defects, seed: int = 77):
    """A mixed lot: in-spec devices plus one die per planted defect."""
    variation = VariationModel(GOOD_VARIATION, seed=seed)
    lot = [(f"die{d.index:02d}", d.model, None)
           for d in Batch(DualSlopeADC, variation).fabricate(n_good)]
    for i, (label, plant) in enumerate(defects.items()):
        adc = DualSlopeADC()
        plant(adc)
        lot.append((f"die{n_good + i:02d}", adc, label))
    rng = random.Random(seed)
    rng.shuffle(lot)
    return lot


def diagnose_die(adc: DualSlopeADC) -> str:
    """Characterise a failing die and name the prime suspect macro.

    A ramp/monotonicity pass runs first: a wrapping counter or corrupt
    latch shows up there long before a static characterisation makes
    sense."""
    trace = adc.convert(1.25)
    if not trace.completed:
        symptoms = Symptoms(conversion_stops=True)
    else:
        mono = MonotonicityBIST(samples=128).run(adc)
        symptoms = Symptoms.from_characterization(
            characterize_servo(adc), completed=True)
        symptoms.non_monotonic = not mono.monotonic
    result = diagnose(symptoms)
    return result.prime_suspect or "unknown"


def main() -> None:
    lot = fabricate_lot(n_good=8, defects=DEFECTS)
    controller = BISTController()

    print(f"screening a lot of {len(lot)} dice with the quick BIST")
    print("-" * 64)
    n_pass = 0
    for name, adc, planted in lot:
        passed = controller.quick_pass(adc)
        n_pass += passed
        line = f"{name}: {'PASS' if passed else 'FAIL'}"
        if not passed:
            suspect = diagnose_die(adc)
            line += f"  -> diagnosis: {suspect}"
            if planted:
                line += f"  (planted: {planted})"
        print(line)
    print("-" * 64)
    print(f"yield: {n_pass}/{len(lot)}")


if __name__ == "__main__":
    main()
