"""Sigma-delta ADC extension — the paper's future work, running.

Builds the first-order sigma-delta converter around the same switched-
capacitor integrator concept, converts with it, compares against the
dual-slope macro, and demonstrates the key testability insight: the
modulator's feedback loop *hides* integrator defects from code-domain
tests, while the transient response of the integrator itself exposes
them — the reason the paper proposes transient testing for sigma-delta
parts.

Run:  python examples/sigma_delta_extension.py
"""

import numpy as np

from repro.adc import DualSlopeADC, SigmaDeltaADC
from repro.core import PAPER_STEP_LEVELS


def main() -> None:
    sd = SigmaDeltaADC()
    ds = DualSlopeADC()
    print(sd.describe())
    print(ds.describe())
    print()

    print("step level (V) | sigma-delta code | dual-slope code")
    for level in PAPER_STEP_LEVELS:
        print(f"{level:14.2f} | {sd.code_of(level):16d} | "
              f"{ds.code_of(level):15d}")
    print()

    # A bitstream up close: the density encodes the input.
    mod = sd.modulator
    mod.reset()
    bits = mod.modulate(2.0 * 1.875 - 2.5, 64)  # 75 % of range
    print("64 modulator bits at v_in = 1.875 V "
          f"(density {np.mean(bits):.2f}, expect 0.75):")
    print("  " + "".join(str(b) for b in bits))
    print()

    # The masking effect.
    broken = SigmaDeltaADC()
    broken.modulator.integrator_gain = 0.5
    print("integrator gain defect (gain = 0.5):")
    print(f"  codes at 1.25 V — healthy: {sd.code_of(1.25)}, "
          f"broken: {broken.code_of(1.25)}   <- identical: the loop "
          f"masks the defect")
    # open-loop integrator responses differ immediately
    v_h = v_b = 0.0
    h, b = [], []
    for k in range(6):
        u = 1.0 if k == 0 else 0.0
        v_h = v_h + sd.modulator.integrator_gain * u
        v_b = v_b + broken.modulator.integrator_gain * u
        h.append(v_h)
        b.append(v_b)
    print(f"  open-loop impulse response — healthy: {h}")
    print(f"                                broken: {b}   <- caught at "
          f"the first sample")


if __name__ == "__main__":
    main()
