"""Transient-response fault hunting on the OP1 macro (circuit 1).

Reproduces the paper's second technique interactively: drive the
13-transistor op-amp with the PRBS stimulus, correlate the response
with the stimulus to recover the signal path's impulse response, and
score each injected fault by its detection instances.

Run:  python examples/transient_fault_hunt.py
"""

import numpy as np

from repro.circuits.op1 import op1_follower
from repro.core import (
    TransientResponseTester,
    TransientTestConfig,
    detection_instances,
    detection_profile,
)
from repro.faults import inject, paper_circuit1_faults


def ascii_strip(wave, width: int = 60, height: int = 9) -> str:
    """A small ASCII plot of a waveform (good enough for a terminal)."""
    values = wave.values
    idx = np.linspace(0, len(values) - 1, width).astype(int)
    v = values[idx]
    lo, hi = float(v.min()), float(v.max())
    span = (hi - lo) or 1.0
    rows = []
    for level in range(height - 1, -1, -1):
        threshold = lo + span * (level + 0.5) / height
        row = "".join("#" if val >= threshold else " " for val in v)
        rows.append(f"{lo + span * (level + 1) / height:7.3f} |{row}")
    return "\n".join(rows)


def main() -> None:
    config = TransientTestConfig(low_v=2.0, high_v=3.5)
    tester = TransientResponseTester(config)
    circuit = op1_follower(input_value=2.5)

    print("fault-free measurement")
    reference = tester.measure(circuit)
    print(f"  response span: {reference.response.trough():.2f} .. "
          f"{reference.response.peak():.2f} V")
    print(f"  correlation peak R(y,p): {reference.correlation_peak():.3f}")
    print()
    print("fault-free correlation (impulse-response view):")
    print(ascii_strip(reference.correlation))
    print()

    print(f"{'fault':42s} {'detection':>10s}")
    print("-" * 54)
    for fault in paper_circuit1_faults():
        faulty = inject(circuit, fault)
        measurement = tester.measure(faulty)
        score = detection_instances(reference.correlation,
                                    measurement.correlation,
                                    rel_threshold=0.02)
        print(f"{fault.describe():42s} {100 * score:9.1f}%")

    # zoom into one fault's detection profile
    fault = paper_circuit1_faults()[4]     # sa0 at node 7
    faulty = tester.measure(inject(circuit, fault))
    profile = detection_profile(reference.correlation, faulty.correlation,
                                rel_threshold=0.02)
    print()
    print(f"detection profile for {fault.describe()} "
          f"(1 = detectable at this lag):")
    print(ascii_strip(profile, height=3))


if __name__ == "__main__":
    main()
