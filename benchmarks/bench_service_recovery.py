"""Durable-service recovery latency: journal replay + re-submit timing.

The crash-safety contract (tests/test_durability.py) says a SIGKILLed
service restarted over its queue/cache/checkpoint files produces
``to_dict()``-identical results; this file times what that restart
*costs*.  Three workloads, shared with the ``recovery`` telemetry
suite in :mod:`repro.obs.bench`:

* ``journal_submit_100`` — 100 fsync'd write-ahead appends, the price
  of accepting work durably;
* ``journal_replay_8jobs`` — pure journal replay, the floor of any
  restart;
* ``service_restart_8jobs`` — the end-to-end restart: replay, rebuild
  and re-submit 8 jobs, and serve all 64 outcomes from checkpoints +
  disk cache without a single simulation.

``python benchmarks/bench_service_recovery.py`` (no pytest) runs the
telemetry suite instead and writes ``BENCH_recovery.json`` in the
``repro.bench/1`` schema — the file committed under
``benchmarks/baselines/`` and compared warn-only in CI's
``service-durability`` job.
"""

from repro.obs.bench import (
    _journal_replay_8jobs,
    _journal_submit_100,
    _recovery_stage,
    _service_restart_8jobs,
)


def test_perf_journal_submit_100(benchmark):
    assert benchmark(_journal_submit_100) == 100


def test_perf_journal_replay(benchmark):
    queue = benchmark(_journal_replay_8jobs)
    assert queue.depth() == 8
    assert queue.corrupt == 0


def test_perf_service_restart(benchmark):
    results = benchmark(_service_restart_8jobs)
    assert len(results) == 8


def test_restart_serves_without_simulation():
    """Not a timing — the recovery-latency pin: a restart over warm
    checkpoint/cache files re-serves every outcome without recomputing
    anything, not even the fault-free references."""
    _recovery_stage()
    results = _service_restart_8jobs()
    assert len(results) == 8
    for result in results:
        assert result.n_faults == 8
        assert result.reference is None  # reference never recomputed
        assert not result.partial


if __name__ == "__main__":
    from repro.obs.bench import run_suite
    run_suite("recovery", rounds=3, out_dir=".")
