"""E9 — ADC macro sanity: the Figure 1 dual-slope converter covers its
full code range monotonically within the timing specification."""

from repro.experiments import e9_adc_transfer


def test_e9_adc_transfer_function(once):
    result = once(e9_adc_transfer.run)
    print()
    print(result.summary())
    assert result.monotonic
    lo, hi = result.full_range
    assert lo == 0 and hi >= 99
    assert result.within_timing_spec
