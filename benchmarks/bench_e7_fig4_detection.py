"""E7 / Figure 4 — regenerate the detection-instances series for the
three example circuits.

Paper: 16 faulty variants of circuit 1 (PRBS correlation technique) and
12 faulty variants of circuits 2 and 3 (impulse-response comparison);
every fault shows a significant number of detection instances and
circuit 3 dips to ~70 % for some faults.
"""

import numpy as np

from repro.experiments import e7_fig4_detection


def test_e7_figure4_detection_instances(once):
    result = once(e7_fig4_detection.run)
    print()
    print(result.summary())
    print("Figure 4 series (percent per faulty circuit):")
    for name, values in result.series().items():
        print(f"  {name}: {[round(v) for v in values]}")
    assert result.all_detected
    assert result.circuit3_is_weakest
    c3 = result.series()["circuit3"]
    assert 55.0 <= min(c3) <= 85.0          # the ~70 % dip
    assert min(result.series()["circuit1"]) >= 90.0
