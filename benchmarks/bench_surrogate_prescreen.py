"""Surrogate-prescreen throughput: vector-fitted verdicts vs the march.

The prescreen's economics: a fault campaign's cost is (faults x
transient steps), while the surrogate's cost per fault is one small
operating point, one ``FrequencyPencil`` sweep and a vector fit —
independent of the stimulus length.  On the 64-fault dictionary driven
by a 127-chip PRBS (12.7 ms, 12701 steps) the prescreen classifies ~98 %
of the universe without a single transient and the campaign finishes
an order of magnitude sooner.

This file pins the tentpole's acceptance floor: >=10x campaign
wall-clock with <=5 % of faults escalated to the full transient, and
verdict equality (``detected`` per fault, with byte-identical outcomes
for escalated faults) against the unprescreened run.

``python benchmarks/bench_surrogate_prescreen.py`` (no pytest) runs
the telemetry suite instead and writes ``BENCH_surrogate.json`` in the
``repro.bench/1`` schema — the file committed under
``benchmarks/baselines/`` and compared warn-only in CI.
"""

import time

import pytest

from repro.faults.campaign import FaultCampaign
from repro.faults.dictionary import (
    SignatureDetector,
    TransientSignatureTechnique,
    dictionary_faults,
    dictionary_ladder,
)
from repro.service.spec import CampaignSpec
from repro.signals.prbs import prbs_waveform

pytestmark = pytest.mark.surrogate

N_SECTIONS = 10
N_FAULTS = 64
DT = 1e-6
OUT_NODE = "n9"
THRESHOLD = 0.05

#: the tentpole's acceptance floor for the prescreened campaign.
TARGET_SPEEDUP = 10.0
#: ... and the ceiling on how much of the universe may escalate.
MAX_ESCALATED_FRACTION = 0.05


def _workload():
    stimulus = prbs_waveform(order=7, chip_time=100e-6, low=0.0,
                             high=5.0, dt=DT, seed=3)
    target = dictionary_ladder(n_sections=N_SECTIONS, stimulus=stimulus)
    faults = dictionary_faults(n_sections=N_SECTIONS, n_faults=N_FAULTS)
    technique = TransientSignatureTechnique(t_stop=stimulus.duration,
                                            dt=DT, node=OUT_NODE)
    return target, technique, tuple(faults)


def _run_campaign(prescreen):
    target, technique, faults = _workload()
    campaign = FaultCampaign(technique, SignatureDetector(abs_v=0.05),
                             threshold=THRESHOLD)
    spec = CampaignSpec(target=target, faults=faults)
    if prescreen:
        spec = spec.replace(prescreen="surrogate")
    return campaign.run(spec=spec)


def test_perf_dictionary_transient(benchmark):
    result = benchmark(_run_campaign, False)
    assert result.n_faults == N_FAULTS


def test_perf_dictionary_prescreened(benchmark):
    result = benchmark(_run_campaign, True)
    assert result.n_faults == N_FAULTS


def test_prescreen_matches_transient_and_hits_target():
    """One unprescreened + one prescreened run under a plain timer:
    verdict equality, the >=10x speedup floor and the <=5 % escalation
    ceiling (measured ~12x with 1/64 escalated on a dev host)."""
    t0 = time.perf_counter()
    reference = _run_campaign(False)
    reference_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    prescreened = _run_campaign(True)
    prescreened_s = time.perf_counter() - t0

    assert prescreened.n_faults == reference.n_faults == N_FAULTS
    for ref, pre in zip(reference.outcomes, prescreened.outcomes):
        assert pre.fault.describe() == ref.fault.describe()
        assert pre.detected == ref.detected, pre.fault.describe()
        if pre.decided_by != "surrogate":
            ref_doc = dict(ref.to_dict(), elapsed_s=0.0)
            pre_doc = dict(pre.to_dict(), elapsed_s=0.0)
            assert pre_doc == ref_doc

    escalated = prescreened.n_faults - prescreened.n_prescreened
    speedup = reference_s / prescreened_s
    print(f"\ndictionary {N_FAULTS}-fault: transient {reference_s:.3f} s, "
          f"prescreened {prescreened_s:.3f} s -> {speedup:.1f}x "
          f"(target >= {TARGET_SPEEDUP:g}x), {escalated} escalated "
          f"(ceiling {MAX_ESCALATED_FRACTION:.0%})")
    assert speedup >= TARGET_SPEEDUP
    assert escalated <= MAX_ESCALATED_FRACTION * N_FAULTS


if __name__ == "__main__":
    from repro.obs.bench import run_suite
    run_suite("surrogate", rounds=3, out_dir=".")
