"""X3 — extension: DAC loopback BIST and converter self-calibration.

Two flows the paper's research background describes for the converter
pair:

* the counter-driven DAC -> ADC loopback sweep as a purely digital quick
  test of both converters,
* measuring the ADC transfer during final test and using it to
  self-calibrate ("formulate the required compensation").
"""

from repro.adc import DualSlopeADC, LoopbackTest, R2RDAC
from repro.adc.calibration import ADCCalibration
from repro.adc.selfcal import calibration_improvement


def run_flows():
    adc = DualSlopeADC()
    healthy = LoopbackTest(tolerance=3).run(R2RDAC(), adc)

    stuck_dac = R2RDAC()
    stuck_dac.stuck_bits[6] = 0
    dac_fault = LoopbackTest(tolerance=3).run(stuck_dac, adc)

    broken_adc = adc.copy()
    broken_adc.integrator.gain = 0.7
    adc_fault = LoopbackTest(tolerance=3).run(R2RDAC(), broken_adc)

    bowed = DualSlopeADC(ADCCalibration(comparator_offset_v=30e-3,
                                        cap_voltage_coeff=0.08))
    raw, linear = calibration_improvement(bowed, use_inl_table=False)
    _, with_table = calibration_improvement(bowed, use_inl_table=True)
    return healthy, dac_fault, adc_fault, (raw, linear, with_table)


def test_x3_loopback_and_selfcal(once):
    healthy, dac_fault, adc_fault, cal = once(run_flows)
    raw, linear, with_table = cal
    print()
    print("X3 loopback + self-calibration:")
    print(f"  healthy pair:      {healthy.summary()}")
    print(f"  DAC bit6 stuck 0:  {dac_fault.summary()}")
    print(f"  ADC gain 0.7:      {adc_fault.summary()}")
    print(f"  self-cal worst error: raw {raw:.1f} LSB -> linear "
          f"{linear:.1f} LSB -> +INL table {with_table:.1f} LSB")
    assert healthy.passed
    assert not dac_fault.passed
    assert not adc_fault.passed
    assert with_table < raw
