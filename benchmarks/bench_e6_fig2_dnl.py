"""E6 / Figure 2 — regenerate the full ADC characterisation.

Paper: gain error ±0.5 LSB and offset < 0.2 LSB (in spec) but max INL
1.3 LSB and max DNL 1.2 LSB (out of the 1 LSB spec); Figure 2 plots DNL
against input codes 0–100.
"""

import numpy as np

from repro.experiments import e6_fig2_dnl


def test_e6_full_characterization_figure2(once):
    result = once(e6_fig2_dnl.run)
    print()
    print(result.summary())
    codes, dnl = result.dnl_series()
    # print the figure's series in compact strips
    print("Figure 2 series (code: DNL in LSB):")
    for start in range(0, len(codes), 20):
        chunk = ", ".join(f"{c}:{d:+.2f}" for c, d in
                          zip(codes[start:start + 20], dnl[start:start + 20]))
        print("  " + chunk)
    assert result.offset_gain_in_spec
    assert result.violates_linearity_spec
    ch = result.characterization
    assert abs(ch.max_inl_lsb - 1.3) < 0.15
    assert abs(ch.max_dnl_lsb - 1.2) < 0.15
