"""E5 — regenerate the batch-of-10 screening result.

Paper: "A batch of 10 devices were fabricated ... All devices passed the
analogue, digital and compressed tests."  The defective batch provides
the negative control the paper's flow implies.
"""

from repro.experiments import e5_batch10


def test_e5_batch_screening(once):
    result = once(e5_batch10.run, n_devices=10)
    print()
    print(result.summary())
    assert result.all_good_pass
    assert result.all_defective_fail
