"""A6 — ablation: dynamic Idd testing vs output-voltage correlation.

The paper cites dynamic current testing (Binns & Taylor; Arguelles et
al.) as the complementary technique to its output-correlation method.
This bench runs both on the same 16-fault OP1 universe and the same PRBS
stimulus: faults that feedback hides from the output still disturb the
supply current, and vice versa — together they blanket the universe.
"""

import numpy as np

from repro.circuits.op1 import op1_follower
from repro.core import (
    IddTester,
    TransientResponseTester,
    TransientTestConfig,
    detection_instances,
    idd_detection,
)
from repro.faults import inject, paper_circuit1_faults

CONFIG = TransientTestConfig(low_v=2.0, high_v=3.5, sim_dt_s=10e-6)


def run_both():
    circuit = op1_follower(input_value=2.5)
    v_tester = TransientResponseTester(CONFIG)
    i_tester = IddTester(CONFIG)
    v_ref = v_tester.measure(circuit).correlation
    i_ref = i_tester.measure(circuit)
    rows = []
    for fault in paper_circuit1_faults():
        faulty = inject(circuit, fault)
        v_det = detection_instances(v_ref, v_tester.measure(faulty).correlation,
                                    rel_threshold=0.02)
        i_det = idd_detection(i_ref, i_tester.measure(faulty))
        rows.append((fault.describe(), 100 * v_det, 100 * i_det))
    return rows


def test_a6_idd_vs_voltage(once):
    rows = once(run_both)
    print()
    print("A6 voltage correlation vs dynamic Idd (detection %):")
    print(f"  {'fault':40s} {'voltage':>8s} {'Idd':>8s}")
    for name, v_det, i_det in rows:
        print(f"  {name:40s} {v_det:7.1f}% {i_det:7.1f}%")
    v_all = [v for _, v, _ in rows]
    i_all = [i for _, _, i in rows]
    # both techniques detect every fault on this universe ...
    assert min(v_all) > 50.0
    assert min(i_all) > 20.0
    # ... and the union is at least as strong as either alone
    combined = [max(v, i) for v, i in zip(v_all, i_all)]
    assert min(combined) >= max(min(v_all), min(i_all))
