"""A2 — ablation: measurement noise vs detection instances.

The paper's motivation for correlating: "minor changes to the signal
spectrum ... can be detected in the presence of the composite noise
signal yn(t)".  The sweep adds white noise to the observed response and
shows the correlation-domain detection degrading only gradually, thanks
to the correlator's processing gain.
"""

import numpy as np

from repro.circuits.op1 import op1_follower
from repro.core import (
    TransientResponseTester,
    TransientTestConfig,
    detection_instances,
)
from repro.faults import StuckAtFault, inject

SIGMAS = [0.0, 0.02, 0.05, 0.1, 0.2]


def sweep_noise():
    ckt = op1_follower(input_value=2.5)
    fault = StuckAtFault.sa1("7")
    rows = []
    for sigma in SIGMAS:
        cfg = TransientTestConfig(low_v=2.0, high_v=3.5, sim_dt_s=10e-6,
                                  noise_sigma_v=sigma)
        tester = TransientResponseTester(cfg)
        ref = tester.measure(ckt).correlation
        m = tester.measure(inject(ckt, fault)).correlation
        rows.append((sigma, detection_instances(ref, m,
                                                rel_threshold=0.02)))
    return rows


def test_a2_noise_sweep(once):
    rows = once(sweep_noise)
    print()
    print("A2 noise sweep: sigma(V)  detection")
    for sigma, det in rows:
        print(f"  {sigma:7.2f}  {100 * det:8.1f}%")
    # detection survives noise an order of magnitude above the
    # correlation threshold band
    assert rows[0][1] > 0.9
    assert all(det > 0.5 for _, det in rows)
