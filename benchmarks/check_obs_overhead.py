"""Gate the observability layer's overhead.

Compares two pytest-benchmark JSON files — one produced with
``REPRO_OBS=0`` (baseline) and one with ``REPRO_OBS=1`` (instrumented) —
benchmark by benchmark, and exits non-zero if any instrumented mean
exceeds the baseline mean by more than ``--max-overhead`` (default 10%).

Usage::

    python benchmarks/check_obs_overhead.py bench-off.json bench-on.json
"""

import argparse
import json
import sys


def load_means(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    return {b["name"]: b["stats"]["mean"] for b in doc["benchmarks"]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="benchmark JSON with obs disabled")
    parser.add_argument("instrumented", help="benchmark JSON with obs enabled")
    parser.add_argument("--max-overhead", type=float, default=0.10,
                        help="allowed fractional slowdown (default 0.10)")
    args = parser.parse_args(argv)

    base = load_means(args.baseline)
    inst = load_means(args.instrumented)
    common = sorted(set(base) & set(inst))
    if not common:
        print("error: no common benchmarks between the two files",
              file=sys.stderr)
        return 2

    failed = False
    print(f"{'benchmark':48s} {'off (s)':>12s} {'on (s)':>12s} {'delta':>8s}")
    for name in common:
        overhead = inst[name] / base[name] - 1.0
        flag = ""
        if overhead > args.max_overhead:
            failed = True
            flag = "  FAIL"
        print(f"{name:48s} {base[name]:12.6f} {inst[name]:12.6f} "
              f"{overhead:+7.1%}{flag}")
    if failed:
        print(f"\nobservability overhead exceeds "
              f"{args.max_overhead:.0%} gate", file=sys.stderr)
        return 1
    print(f"\nall benchmarks within the {args.max_overhead:.0%} "
          f"overhead gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
