"""A5 — ablation: compressed-test compaction modes across a batch.

The literal reading of the paper compacts raw output codes into the
MISR; that signature is brittle for step levels landing near a code
transition once devices spread.  The window-compare mode (used by the
BIST controller) stays stable across the in-spec batch while remaining
sensitive to real faults.
"""

from repro.adc import DualSlopeADC
from repro.core import CompressedTest
from repro.experiments.e5_batch10 import GOOD_VARIATION
from repro.process import Batch, VariationModel


def sweep_modes(n_devices=10):
    variation = VariationModel(GOOD_VARIATION, seed=2024)
    devices = Batch(DualSlopeADC, variation).fabricate(n_devices)
    results = {}
    for mode in ("window", "codes"):
        test = CompressedTest(mode=mode)
        golden = test.run(DualSlopeADC()).digital_signature
        stable = sum(
            1 for dev in devices
            if test.run(dev.model).digital_signature == golden)
        # sensitivity: a dead integrator must still change the signature
        broken = DualSlopeADC()
        broken.integrator.enabled = False
        sensitive = test.run(broken).digital_signature != golden
        results[mode] = (stable, sensitive)
    return results


def test_a5_signature_mode_stability(once):
    results = once(sweep_modes)
    print()
    print("A5 signature modes over a 10-device in-spec batch:")
    for mode, (stable, sensitive) in results.items():
        print(f"  {mode:7s}: {stable}/10 devices reproduce the golden "
              f"signature; detects dead integrator: {sensitive}")
    window_stable, window_sensitive = results["window"]
    codes_stable, _ = results["codes"]
    assert window_stable == 10          # robust across the good batch
    assert window_sensitive             # still catches real faults
    assert codes_stable <= window_stable  # raw codes are (at best) equal
