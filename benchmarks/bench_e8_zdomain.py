"""E8 — regenerate the circuit-2 z-domain design check.

Paper: the SC integrator is designed for
H(z) = z^-1 / (6.8 (1 - z^-1)) with 5 us non-overlapping clocks.
Verified analytically and by transistor-level MNA simulation.
"""

from repro.experiments import e8_zdomain


def test_e8_zdomain_design_check(once):
    result = once(e8_zdomain.run)
    print()
    print(result.summary())
    assert result.analytic_matches
    assert abs(result.pole_magnitude - 1.0) < 1e-9
    assert result.transistor_error_fraction < 0.05
