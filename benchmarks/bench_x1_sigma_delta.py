"""X1 — extension: the BIST applied to the sigma-delta architecture.

The paper's future work: on-chip functional testing for sigma-delta
ADCs "where the switched capacitor integrator forms a major part of the
circuit".  The bench makes the case for that research direction
quantitatively:

* the existing step-generator levels exercise the sigma-delta converter
  and match the dual-slope macro's codes (the BIST stimulus transfers);
* transfer-corrupting defects (stuck comparator, DAC reference error)
  are caught by the same window check;
* **but** integrator gain/leak defects are *masked by the modulator's
  feedback loop* — the code-domain quick test cannot see them — while
  the transient-response view of the integrator itself (the paper's
  circuit-3 technique) exposes them immediately.  That asymmetry is
  precisely why the paper proposes transient testing of the SC
  integrator for sigma-delta parts.
"""

import numpy as np

from repro.adc import DualSlopeADC, SigmaDeltaADC
from repro.core import PAPER_STEP_LEVELS


def window_check(adc, tolerance=2):
    """The compressed-test style window compare on the step levels."""
    lsb = adc.lsb_v
    return all(
        abs(adc.code_of(level) - min(adc.n_codes, round(level / lsb)))
        <= tolerance
        for level in PAPER_STEP_LEVELS)


def integrator_transient_check(adc, band=0.05, n=32):
    """Circuit-3-style check on the modulator's integrator alone:
    open the loop, apply a unit charge packet, compare the response to
    nominal.  Returns True when the response stays inside the band."""
    def impulse_response(mod):
        v = 0.0
        out = []
        for k in range(n):
            u = 1.0 if k == 0 else 0.0
            v = (1.0 - mod.integrator_leak) * v \
                + mod.integrator_gain * u + mod.integrator_offset_v
            out.append(v)
        return np.asarray(out)

    nominal = impulse_response(SigmaDeltaADC().modulator)
    measured = impulse_response(adc.modulator)
    return bool(np.max(np.abs(measured - nominal)) <= band)


TRANSFER_DEFECTS = {
    "comparator stuck": lambda a: setattr(
        a.modulator.comparator, "stuck_output", 1),
    "DAC high ref -20%": lambda a: setattr(
        a.modulator, "dac_high_error_v", -0.5),
}

MASKED_DEFECTS = {
    "integrator gain 0.5": lambda a: setattr(
        a.modulator, "integrator_gain", 0.5),
    "integrator leak 5%": lambda a: setattr(
        a.modulator, "integrator_leak", 0.05),
}


def run_extension():
    healthy = SigmaDeltaADC()
    dual_slope = DualSlopeADC()
    codes_sd = [healthy.code_of(v) for v in PAPER_STEP_LEVELS]
    codes_ds = [dual_slope.code_of(v) for v in PAPER_STEP_LEVELS]

    def plant(defects):
        out = {}
        for name, do in defects.items():
            broken = SigmaDeltaADC()
            do(broken)
            out[name] = (window_check(broken),
                         integrator_transient_check(broken))
        return out

    return (codes_sd, codes_ds, window_check(healthy),
            integrator_transient_check(healthy),
            plant(TRANSFER_DEFECTS), plant(MASKED_DEFECTS))


def test_x1_sigma_delta_bist(once):
    (codes_sd, codes_ds, healthy_window, healthy_transient,
     transfer, masked) = once(run_extension)
    print()
    print("X1 sigma-delta extension:")
    print(f"  step levels:       {PAPER_STEP_LEVELS}")
    print(f"  sigma-delta codes: {codes_sd}")
    print(f"  dual-slope codes:  {codes_ds}")
    print(f"  healthy: window {'PASS' if healthy_window else 'FAIL'}, "
          f"transient {'PASS' if healthy_transient else 'FAIL'}")
    print("  defect                 window-check   integrator-transient")
    for name, (w, t) in {**transfer, **masked}.items():
        print(f"  {name:22s} {'pass (missed)' if w else 'FAIL->caught':14s} "
              f"{'pass (missed)' if t else 'FAIL->caught'}")

    # the BIST stimulus transfers between architectures
    assert all(abs(a - b) <= 2 for a, b in zip(codes_sd, codes_ds))
    assert healthy_window and healthy_transient
    # transfer-corrupting defects: caught by the code-domain check
    assert not any(w for w, _t in transfer.values())
    # loop-masked defects: invisible to the code-domain check...
    assert all(w for w, _t in masked.values())
    # ...but exposed by the integrator's transient response
    assert not any(t for _w, t in masked.values())
