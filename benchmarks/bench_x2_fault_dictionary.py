"""X2 — extension: diagnostic test patterns / fault dictionary.

The paper's future work: "development of more comprehensive test
patterns for fault diagnosis designed to a specific ADC architecture".
The bench builds the dictionary from the standard fault library and
verifies that the pattern distinguishes and self-identifies every
library fault while classifying a healthy device as healthy.
"""

from repro.adc import DualSlopeADC
from repro.core import STANDARD_FAULT_LIBRARY, FaultDictionary


def run_dictionary():
    dictionary = FaultDictionary().build(DualSlopeADC())
    hits = {}
    for name, plant in STANDARD_FAULT_LIBRARY.items():
        device = DualSlopeADC()
        plant(device)
        match = dictionary.match(device)
        hits[name] = (match.best, match.is_healthy)
    healthy = dictionary.match(DualSlopeADC())
    return dictionary, hits, healthy


def test_x2_fault_dictionary(once):
    dictionary, hits, healthy = once(run_dictionary)
    print()
    print("X2 fault dictionary:")
    print(f"  {len(dictionary.entries)} library faults, "
          f"distinguishability {dictionary.distinguishability():.3f}")
    correct = 0
    for name, (best, flagged_healthy) in hits.items():
        ok = best == name and not flagged_healthy
        correct += ok
        print(f"  {name:26s} -> {best:26s} {'OK' if ok else 'MISS'}")
    print(f"  healthy device: {healthy.summary()}")
    assert correct == len(hits)            # every fault self-identifies
    assert healthy.is_healthy
    assert dictionary.distinguishability() > 0.0
