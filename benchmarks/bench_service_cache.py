"""Campaign service: cold vs warm result-cache runs.

Times the same 21-fault OP1 campaign three ways — uncached, cold run
populating a :class:`~repro.service.ResultCache`, and the warm re-run
replaying every outcome from the cache.  The warm run performs zero
simulations (not even the fault-free reference), so its time is pure
lookup + bookkeeping; the timing comparison is informational (warn-only
in CI), while the equality assertions are hard.

Everything here is module-level (no lambdas) so the campaign stays
eligible for the process-pool path.
"""

import numpy as np

from repro import CampaignSpec, ResultCache
from repro.circuits.op1 import op1_follower
from repro.faults.campaign import FaultCampaign
from repro.faults.universe import bridging_universe, full_node_universe
from repro.spice import transient


def _step_drive(t):
    return 2.2 if t < 5e-6 else 2.8


def _technique(circuit):
    result = transient(circuit, t_stop=5e-5, dt=2.5e-7, record=["3"])
    return result.array("3")


def _detector(reference, measurement):
    return float(np.mean(np.abs(measurement - reference) > 0.05))


def _make_target():
    return op1_follower(input_value=_step_drive)


def _make_faults():
    circuit = _make_target()
    faults = full_node_universe(circuit)
    faults += bridging_universe(["4", "6", "8"])
    assert len(faults) >= 20
    return faults


def _run(cache):
    campaign = FaultCampaign(_technique, _detector, cache=cache)
    return campaign.run(_make_target(), _make_faults())


def test_perf_campaign_uncached(benchmark):
    result = benchmark(_run, None)
    assert result.n_faults >= 20


def _run_cold():
    return _run(ResultCache())                # fresh cache every round


def test_perf_campaign_cold_cache(benchmark):
    result = benchmark(_run_cold)
    assert result.n_faults >= 20


def test_perf_campaign_warm_cache(benchmark):
    cache = ResultCache()
    _run(cache)                               # populate outside the timer
    result = benchmark(_run, cache)
    assert result.n_faults >= 20
    assert all(o.from_cache for o in result.outcomes)
    assert cache.stats.misses == result.n_faults   # cold run's misses only


def test_warm_run_equals_cold_run():
    """Not a timing — the service-equivalence pin: a warm re-run's
    payload matches the cold run byte for byte, total wall clock aside,
    and performs zero simulations."""
    cache = ResultCache()
    spec = CampaignSpec(batch_size=1, cache=cache)
    campaign = FaultCampaign(_technique, _detector)
    target, faults = _make_target(), _make_faults()
    cold = campaign.run(target, faults, spec=spec)
    warm = campaign.run(target, faults, spec=spec)
    assert warm.reference is None             # reference never recomputed
    assert all(o.from_cache for o in warm.outcomes)
    got, want = warm.to_dict(), cold.to_dict()
    got.pop("elapsed_s"), want.pop("elapsed_s")
    assert got == want
