"""Differential-harness throughput: circuits fuzzed per second.

Times the verify subsystem's three routes (LinearMarch fast path,
Newton reference engine, discrete state-space oracle) over a fixed seed
set, per circuit kind.  This is the cost model for choosing the CI
``verify-fuzz`` seed count: the 200-seed job is ~40x the 5-seed numbers
printed here.  Also times a single Richardson convergence check (nine
transient runs across four dt levels).
"""

from conftest import run_once

from repro.verify import check_convergence, run_differential

N_SEEDS = 5


def _fuzz(kind):
    report = run_differential(range(N_SEEDS), kinds=(kind,), max_steps=128)
    assert report.ok, report.summary()
    return report


def test_perf_differential_rc(benchmark):
    report = run_once(benchmark, _fuzz, "rc")
    print(f"\n  {report.summary()}")


def test_perf_differential_rlc(benchmark):
    report = run_once(benchmark, _fuzz, "rlc")
    print(f"\n  {report.summary()}")


def test_perf_differential_mosfet(benchmark):
    """The Newton-route kind: no oracle, fast vs reference only."""
    report = run_once(benchmark, _fuzz, "mosfet")
    print(f"\n  {report.summary()}")


def test_perf_convergence_check(benchmark):
    result = run_once(benchmark, check_convergence,
                      seed=0, kind="rlc", method="trap")
    assert result.ok, result.summary()
    print(f"\n  {result.summary()}")
