"""Simulator micro-benchmarks.

Not a paper artefact — these time the MNA substrate itself so
performance regressions in the engine show up in the benchmark run.
Multiple rounds are meaningful here (unlike the experiment benches).
"""

import numpy as np

from repro.circuits.op1 import op1_follower
from repro.spice import Circuit, dc_operating_point, transient


def test_perf_dc_operating_point_op1(benchmark):
    """Newton bias solve of the 13-transistor amplifier."""
    circuit = op1_follower(input_value=2.5)
    voltages, _ = benchmark(dc_operating_point, circuit)
    assert abs(voltages["3"] - 2.5) < 0.05


def test_perf_transient_op1_1000_steps(benchmark):
    """1000 backward-Euler steps of the amplifier under a step drive."""
    circuit = op1_follower(
        input_value=lambda t: 2.2 if t < 50e-6 else 3.0)

    def run():
        return transient(circuit, t_stop=1e-3, dt=1e-6, record=["3"])

    result = benchmark(run)
    assert result.final("3") == np.float64(result.final("3"))


def test_perf_transient_rc_10000_steps(benchmark):
    """Raw engine throughput on a small linear network."""
    circuit = Circuit("rc")
    circuit.vsource("VIN", "in", "0", lambda t: 5.0 if t > 0 else 0.0)
    circuit.resistor("R1", "in", "out", 1e3)
    circuit.capacitor("C1", "out", "0", 1e-6)

    def run():
        return transient(circuit, t_stop=10e-3, dt=1e-6, record=["out"])

    result = benchmark(run)
    assert result.final("out") > 4.9
