"""A3 — ablation: correlation method vs direct response comparison.

Compares detecting faults from R(y, p) (the paper's technique) against
thresholding the raw response difference, both under measurement noise.
The correlation's processing gain keeps its false-alarm floor near zero
while the raw comparison false-alarms on a substantial fraction of time
points once the noise approaches the detection band.
"""

import numpy as np

from repro.circuits.op1 import op1_follower
from repro.core import (
    TransientResponseTester,
    TransientTestConfig,
    detection_instances,
)
from repro.faults import StuckAtFault, inject

SIGMA = 0.05  # 50 mV of measurement noise


def compare_methods():
    base = dict(low_v=2.0, high_v=3.5, sim_dt_s=10e-6)
    tester_ref = TransientResponseTester(TransientTestConfig(**base))
    tester_noisy = TransientResponseTester(
        TransientTestConfig(noise_sigma_v=SIGMA, noise_seed=11, **base))
    tester_noisy2 = TransientResponseTester(
        TransientTestConfig(noise_sigma_v=SIGMA, noise_seed=23, **base))

    ckt = op1_follower(input_value=2.5)
    clean = tester_ref.measure(ckt)
    noisy_same = tester_noisy.measure(ckt)        # same device, noisy
    noisy_same2 = tester_noisy2.measure(ckt)
    faulty = tester_noisy.measure(inject(ckt, StuckAtFault.sa1("7")))

    # false-alarm rate: fault-free device measured twice through noise
    fa_corr = detection_instances(noisy_same.correlation,
                                  noisy_same2.correlation,
                                  rel_threshold=0.02)
    fa_raw = detection_instances(noisy_same.response,
                                 noisy_same2.response,
                                 rel_threshold=0.02)
    # detection: faulty vs fault-free
    det_corr = detection_instances(clean.correlation, faulty.correlation,
                                   rel_threshold=0.02)
    det_raw = detection_instances(clean.response, faulty.response,
                                  rel_threshold=0.02)
    return fa_corr, fa_raw, det_corr, det_raw


def test_a3_correlation_vs_raw(once):
    fa_corr, fa_raw, det_corr, det_raw = once(compare_methods)
    print()
    print("A3 method comparison at sigma = 50 mV:")
    print(f"  false alarms: correlation {100 * fa_corr:.1f}%  "
          f"raw {100 * fa_raw:.1f}%")
    print(f"  detection:    correlation {100 * det_corr:.1f}%  "
          f"raw {100 * det_raw:.1f}%")
    # correlation: near-zero false alarms with strong detection
    assert fa_corr < 0.05
    assert det_corr > 0.8
    # the raw comparison false-alarms substantially at this noise level;
    # the correlator's processing gain suppresses that by > 3x
    assert fa_raw > 0.1
    assert fa_corr < fa_raw / 3.0
