"""E4 — regenerate the compressed test results.

Paper: the MISR signature over the consecutive step responses and the
2-bit analogue signature from the 1.9/3.6 V level sensor gave expected
results on all (healthy) chips; the bench additionally shows broken
devices failing.
"""

from repro.experiments import e4_compressed


def test_e4_compressed_signatures(once):
    result = once(e4_compressed.run)
    print()
    print(result.summary())
    assert result.healthy_passes
    assert result.faulty_fail
