"""E3 — regenerate the digital test results.

Paper rows: conversion time within the 5.6 ms specification at the
100 kHz counter clock; a 10 µs fall-time difference corresponds to 10 mV
of input per output-code change.
"""

from repro.experiments import e3_digital_tests


def test_e3_digital_test_rows(once):
    result = once(e3_digital_tests.run)
    print()
    print(result.summary())
    assert result.passed
    assert result.report.max_conversion_time_s <= 5.6e-3
    assert abs(result.report.fall_time_delta_s - 10e-6) < 1e-9
    assert abs(result.report.mv_per_code - 10.0) < 0.2
