"""Fault-campaign throughput: serial vs process-pool evaluation.

Times the same 21-fault campaign over the OP1 amplifier with
``workers=1`` and ``workers=4``.  Faults are independent simulations, so
on a multi-core host the pool run should approach a ``min(workers,
cores)``-fold speedup; on a single core it degrades gracefully to
roughly serial time plus pool overhead.

Everything here is module-level (no lambdas) because the pool pickles
the technique, detector, target circuit and fault list into the worker
processes.
"""

import numpy as np

from repro.circuits.op1 import op1_follower
from repro.faults.campaign import FaultCampaign
from repro.faults.universe import bridging_universe, full_node_universe
from repro.spice import transient


def _step_drive(t):
    return 2.2 if t < 5e-6 else 2.8


def _technique(circuit):
    """Transient step response at the output node."""
    result = transient(circuit, t_stop=5e-5, dt=2.5e-7, record=["3"])
    return result.array("3")


def _detector(reference, measurement):
    """Fraction of sample instants deviating by more than 50 mV."""
    return float(np.mean(np.abs(measurement - reference) > 0.05))


def _make_target():
    return op1_follower(input_value=_step_drive)


def _make_faults():
    circuit = _make_target()
    faults = full_node_universe(circuit)
    faults += bridging_universe(["4", "6", "8"])
    assert len(faults) >= 20
    return faults


def _run_campaign(workers):
    target = _make_target()
    campaign = FaultCampaign(_technique, _detector, workers=workers)
    return campaign.run(target, _make_faults())


def test_perf_campaign_serial(benchmark):
    result = benchmark(_run_campaign, 1)
    assert result.n_faults >= 20


def test_perf_campaign_workers4(benchmark):
    result = benchmark(_run_campaign, 4)
    assert result.n_faults >= 20


def test_campaign_workers_match_serial():
    """Not a timing — parallel results must be fault-for-fault identical."""
    serial = _run_campaign(1)
    pooled = _run_campaign(4)
    assert [o.fault.describe() for o in serial.outcomes] == \
        [o.fault.describe() for o in pooled.outcomes]
    assert [o.detection for o in serial.outcomes] == \
        [o.detection for o in pooled.outcomes]
    assert [o.detected for o in serial.outcomes] == \
        [o.detected for o in pooled.outcomes]
