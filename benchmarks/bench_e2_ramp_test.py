"""E2 — regenerate the ramp-test measurements and the gain-error
masking demonstration.

Paper: ramp 0→2.5 V over 1 s, 6 measurements at 200 ms intervals; a ramp
gain error that compensates an ADC gain error leaves no indication of an
error at the output.
"""

from repro.experiments import e2_ramp_test


def test_e2_ramp_measurements_and_masking(once):
    result = once(e2_ramp_test.run)
    print()
    print(result.summary())
    assert len(result.nominal_codes) == 6
    assert result.unmasked_detected       # honest ramp catches the fault
    assert result.masking_occurs          # compensating ramp hides it
