"""E1 — regenerate the paper's step-input fall-time table.

Paper rows: steps 0, 0.59, 0.96, 1.41, 1.8, 2.5 V →
fall times 2.6, 2.2, 1.9, 1.2, 0.8, 0.1 ms.
"""

from repro.experiments import e1_step_table


def test_e1_step_fall_time_table(once):
    result = once(e1_step_table.run)
    print()
    print(result.summary())
    # shape: monotone decreasing, endpoints pinned to the paper
    assert result.monotone_decreasing()
    rows = result.rows()
    assert rows[0][1] == 2.6e-3
    assert abs(rows[-1][1] - 0.1e-3) < 0.02e-3
    assert result.max_abs_error_s < 0.3e-3
