"""X4 — extension: parametric yield over the process spread.

The quick BIST passes all 10 in-spec devices (E5) on its functional
criteria, yet the nominal design already violates the 1 LSB INL/DNL
specification (E6).  This bench quantifies the consequence: the
parametric (spec-line) yield of the same batch is linearity-limited,
and relaxing the linearity limit to the measured 1.3/1.2 LSB level
recovers the yield — the engineering trade the paper's characterisation
section implies.
"""

from repro.experiments.e5_batch10 import GOOD_VARIATION
from repro.process import VariationModel, parametric_yield, yield_vs_spec_limit


def run_yield():
    variation = VariationModel(GOOD_VARIATION, seed=1996)
    report = parametric_yield(variation, n_devices=10)
    curve = yield_vs_spec_limit(variation, [1.0, 1.2, 1.4, 1.6],
                                n_devices=10)
    return report, curve


def test_x4_parametric_yield(once):
    report, curve = once(run_yield)
    print()
    print("X4 parametric yield:")
    print("  " + report.summary())
    print("  yield vs shared INL/DNL limit:")
    for limit, y in curve:
        print(f"    {limit:.1f} LSB -> {100 * y:.0f}%")
    # offset and gain lines are comfortable; linearity limits the yield
    line = report.line_yield()
    assert line["offset"] == 1.0
    assert line["gain"] == 1.0
    assert report.worst_metric() in ("inl", "dnl")
    assert line["all"] < 1.0
    # relaxing the limit to the measured level recovers the batch
    assert curve[-1][1] > curve[0][1]
    assert curve[-1][1] == 1.0
