"""Batched fault-dictionary throughput: lockstep K-variant marching.

The dictionary scenario from the paper's methodology — store the
sampled response of every faulty variant to the BIST stimulus — is
embarrassingly batchable: all 64 bridging faults of the RC-ladder
universe are linear, add no MNA unknowns, and share one stimulus, so
the batched engine marches them as a single ``(K, n, n) @ (K, n, 1)``
lockstep tensor.  This file times the same 64-fault campaign at
``batch_size`` ∈ {1, 8, 32, 64} (the speedup table), pins batched
results to the serial ones, and demonstrates the sparse (CSC + splu)
solver route on a ladder large enough that the dense path cannot
finish inside the budget the sparse route sets.

``python benchmarks/bench_batched_dictionary.py`` (no pytest) runs the
telemetry suite instead and writes ``BENCH_batched.json`` in the
``repro.bench/1`` schema — the file committed under
``benchmarks/baselines/`` and compared warn-only in CI.
"""

import os
import time

from repro.errors import DeadlineExceeded
from repro.faults.campaign import FaultCampaign
from repro.faults.dictionary import (
    SignatureDetector,
    TransientSignatureTechnique,
    dictionary_faults,
    dictionary_ladder,
)
from repro.resilience.deadline import deadline_scope
from repro.spice import transient

N_SECTIONS = 10
N_FAULTS = 64
T_STOP = 3.1e-3
DT = 1e-6
OUT_NODE = "n9"

#: the tentpole's acceptance floor for the K=64 lockstep speedup.
TARGET_SPEEDUP = 5.0


def _run_campaign(batch_size):
    target = dictionary_ladder(n_sections=N_SECTIONS)
    faults = dictionary_faults(n_sections=N_SECTIONS, n_faults=N_FAULTS)
    technique = TransientSignatureTechnique(t_stop=T_STOP, dt=DT,
                                            node=OUT_NODE)
    campaign = FaultCampaign(technique, SignatureDetector(abs_v=0.05),
                             threshold=0.0, batch_size=batch_size)
    return campaign.run(target, faults)


def test_perf_dictionary_serial(benchmark):
    result = benchmark(_run_campaign, 1)
    assert result.n_faults == N_FAULTS


def test_perf_dictionary_k8(benchmark):
    result = benchmark(_run_campaign, 8)
    assert result.n_faults == N_FAULTS


def test_perf_dictionary_k32(benchmark):
    result = benchmark(_run_campaign, 32)
    assert result.n_faults == N_FAULTS


def test_perf_dictionary_k64(benchmark):
    result = benchmark(_run_campaign, 64)
    assert result.n_faults == N_FAULTS


def _normalized(result):
    """to_dict with the wall-clock fields zeroed — timing is the only
    permitted batched-vs-serial difference."""
    doc = result.to_dict()
    doc["elapsed_s"] = 0.0
    doc["outcomes"] = [dict(o, elapsed_s=0.0) for o in doc["outcomes"]]
    return doc


def test_batched_matches_serial_and_hits_target():
    """Not a pytest-benchmark timing: one serial + one K=64 run under a
    plain timer, asserting byte-identical outcomes *and* the >=5x
    speedup the tentpole promises (measured ~19x on a dev host)."""
    t0 = time.perf_counter()
    serial = _run_campaign(1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = _run_campaign(N_FAULTS)
    batched_s = time.perf_counter() - t0
    assert _normalized(batched) == _normalized(serial)
    speedup = serial_s / batched_s
    print(f"\ndictionary {N_FAULTS}-fault: serial {serial_s:.3f} s, "
          f"K={N_FAULTS} {batched_s:.3f} s -> {speedup:.1f}x "
          f"(target >= {TARGET_SPEEDUP:g}x)")
    assert speedup >= TARGET_SPEEDUP


def test_sparse_route_beats_dense_deadline():
    """The sparse acceptance demo: a 2000-node RC ladder transient.

    The sparse route (automatic above the threshold) finishes in a few
    hundred ms; the dense path, forced via ``REPRO_SPARSE_THRESHOLD``,
    is given five times the sparse wall-clock (floored at 1 s) and must
    trip the cooperative deadline instead of completing — the dense
    O(n^3) setup plus O(n^2)-per-step march simply does not fit.
    """
    n = 2000
    circuit = dictionary_ladder(n_sections=n, r_ohm=10.0)
    out = f"n{n - 1}"
    t0 = time.perf_counter()
    result = transient(circuit, t_stop=1e-3, dt=2e-6, record=[out])
    sparse_s = time.perf_counter() - t0
    assert result.stats["engine"] == "sparse_linear_march"
    budget_s = max(5.0 * sparse_s, 1.0)
    os.environ["REPRO_SPARSE_THRESHOLD"] = str(10 * n)
    try:
        with deadline_scope(budget_s, label="dense-route budget"):
            try:
                transient(circuit, t_stop=1e-3, dt=2e-6, record=[out])
            except DeadlineExceeded:
                dense_verdict = "deadline"
            else:
                dense_verdict = "completed"
    finally:
        del os.environ["REPRO_SPARSE_THRESHOLD"]
    print(f"\nsparse {n}-node ladder: {sparse_s:.3f} s; dense under a "
          f"{budget_s:.2f} s budget: {dense_verdict}")
    assert dense_verdict == "deadline"


if __name__ == "__main__":
    from repro.obs.bench import run_suite
    run_suite("batched", rounds=3, out_dir=".")
