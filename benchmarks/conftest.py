"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the rows/series it reports, so `pytest benchmarks/ --benchmark-only -s`
reproduces the evaluation section end to end.  Heavy simulations run one
round (they are deterministic; the timing is informational).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic experiment exactly once under the timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _once(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return _once
