"""A4 — ablation: BIST transistor-budget audit.

Paper: "The analogue section of the testing macro had an overhead of 152
transistors.  The digital section of the testing macro needed 484
transistors.  However the digital test structures could also be used to
test further digital areas of a mixed chip."
"""

from repro.core import bist_overhead
from repro.core.partition import (
    ANALOG_TEST_MACROS,
    DIGITAL_TEST_MACROS,
    adc_transistor_count,
)


def test_a4_overhead_audit(once):
    audit = once(bist_overhead)
    print()
    print(audit.summary())
    print("  analogue macros:", ANALOG_TEST_MACROS)
    print("  digital macros: ", DIGITAL_TEST_MACROS)
    assert audit.analog_total == 152
    assert audit.digital_total == 484
    assert adc_transistor_count() == 1000
    # overhead relative to the ADC stays under ~2/3
    assert audit.overhead_fraction < 0.67
