"""A1 — ablation: PRBS length / chip time vs detection coverage.

Sweeps the stimulus configuration of the circuit-1 transient test and
reports the minimum detection fraction over a representative fault
subset.  The paper's choice (order 4, 250 us chips) sits on the flat
part of the curve — shorter sequences lose little because the
correlation window, not the sequence tail, carries the signature.
"""

import numpy as np

from repro.circuits.op1 import op1_follower
from repro.core import (
    TransientResponseTester,
    TransientTestConfig,
    detection_instances,
)
from repro.faults import StuckAtFault, inject

#: representative fault subset (full campaign is E7)
FAULTS = [
    StuckAtFault.sa0("5"),
    StuckAtFault.sa1("7"),
    StuckAtFault.sa0("8"),
    StuckAtFault.sa1("3"),
]

SWEEP = [
    dict(prbs_order=3, chip_time_s=250e-6),
    dict(prbs_order=4, chip_time_s=250e-6),   # the paper's stimulus
    dict(prbs_order=5, chip_time_s=250e-6),
    dict(prbs_order=4, chip_time_s=100e-6),
    dict(prbs_order=4, chip_time_s=500e-6),
]


def sweep_prbs():
    rows = []
    for params in SWEEP:
        cfg = TransientTestConfig(low_v=2.0, high_v=3.5, sim_dt_s=10e-6,
                                  **params)
        tester = TransientResponseTester(cfg)
        ckt = op1_follower(input_value=2.5)
        ref = tester.measure(ckt).correlation
        dets = []
        for fault in FAULTS:
            m = tester.measure(inject(ckt, fault)).correlation
            dets.append(detection_instances(ref, m, rel_threshold=0.02))
        rows.append((params["prbs_order"], params["chip_time_s"],
                     min(dets), float(np.mean(dets))))
    return rows


def test_a1_prbs_sweep(once):
    rows = once(sweep_prbs)
    print()
    print("A1 PRBS sweep: order  chip(us)  min-det  mean-det")
    for order, chip, lo, mean in rows:
        print(f"  {order:5d}  {1e6 * chip:8.0f}  {100 * lo:6.1f}%  "
              f"{100 * mean:7.1f}%")
    # every configuration detects every fault strongly
    assert all(lo > 0.5 for _, _, lo, _ in rows)
    # the paper's configuration is not measurably worse than the longest
    paper = next(r for r in rows if r[0] == 4 and r[1] == 250e-6)
    longest = next(r for r in rows if r[0] == 5)
    assert paper[2] >= longest[2] - 0.15
