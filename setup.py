"""Legacy setup shim so ``pip install -e .`` works without the ``wheel``
package (offline environments); all metadata lives in pyproject.toml."""

from setuptools import setup

setup()
